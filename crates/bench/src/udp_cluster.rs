//! Real-socket symmetric harness: the fig4 workload shape over kernel
//! transports ([`erpc_transport::UdpTransport`] and, where the probe
//! succeeds, `IoUringTransport`) instead of the in-process fabric.
//!
//! Same single-threaded discipline as [`crate::thread_cluster`]: every
//! endpoint is polled round-robin on the measured core, so rates are
//! per-core numbers. What changes is the substrate — packets cross the
//! kernel's loopback stack — which is exactly what the transport
//! ablation wants to price: syscalls per RPC across the three doorbell
//! disciplines (per-packet loop, `sendmmsg` batch, io_uring SQ), read
//! from measure-window deltas of the transport counters.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::{Duration, Instant};

use erpc::{LatencyHistogram, MsgBuf, Rpc, RpcConfig};
use erpc_transport::{Addr, SocketTransport, TransportStats, UdpConfig, UdpTransport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ECHO: u8 = 1;

/// Which kernel datapath backs the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpBackend {
    /// Portable per-packet `send_to`/`recv_from` loop (the ablation
    /// baseline: O(packets) syscalls per pass).
    UdpLoop,
    /// `sendmmsg`/`recvmmsg` batching (PR 5: O(1) syscalls per pass).
    UdpMmsg,
    /// io_uring submission/completion rings (this PR: O(0) with
    /// `sqpoll`, at most one `io_uring_enter` per pass without).
    Uring {
        /// Kernel SQ-polling thread (zero-syscall steady state).
        sqpoll: bool,
    },
}

impl UdpBackend {
    /// Row label for tables.
    pub fn label(self) -> &'static str {
        match self {
            UdpBackend::UdpLoop => "udp per-packet loop",
            UdpBackend::UdpMmsg => "udp sendmmsg/recvmmsg",
            UdpBackend::Uring { sqpoll: false } => "io_uring",
            UdpBackend::Uring { sqpoll: true } => "io_uring + SQPOLL",
        }
    }
}

/// Options for the real-socket symmetric workload.
#[derive(Clone)]
pub struct UdpSymmetricOpts {
    /// Rpc endpoints, each on its own loopback socket (≥ 2).
    pub endpoints: usize,
    /// Requests issued per batch.
    pub batch: usize,
    pub req_size: usize,
    pub resp_size: usize,
    /// Target in-flight requests per endpoint.
    pub window: usize,
    pub warmup_ms: u64,
    pub measure_ms: u64,
    pub rpc_cfg: RpcConfig,
}

impl Default for UdpSymmetricOpts {
    fn default() -> Self {
        Self {
            endpoints: 2,
            batch: 3,
            req_size: 32,
            resp_size: 32,
            window: 16,
            warmup_ms: 100,
            measure_ms: 500,
            rpc_cfg: RpcConfig {
                ping_interval_ns: 0,
                ..RpcConfig::default()
            },
        }
    }
}

/// Result of a real-socket symmetric run. The syscall counters are
/// **measure-window deltas** summed across endpoints, so `ring_enters /
/// total_completed` is the steady-state enters-per-RPC figure the
/// acceptance criteria name (warmup, connection setup, and probe
/// syscalls excluded).
pub struct UdpSymmetricResult {
    pub backend: UdpBackend,
    /// RPCs completed per second on the measured core.
    pub per_core_rate: f64,
    /// Requests completed in the measure window.
    pub total_completed: u64,
    pub latency: LatencyHistogram,
    /// Event-loop passes (all endpoints) in the measure window.
    pub passes: u64,
    /// Measure-window transport counter deltas (summed over endpoints).
    pub tx_syscalls: u64,
    pub rx_syscalls: u64,
    pub ring_enters: u64,
    pub sqe_submitted: u64,
    pub cqe_harvested: u64,
}

impl UdpSymmetricResult {
    /// Kernel crossings per completed RPC: every send/recv syscall plus
    /// every `io_uring_enter`, whichever discipline paid them.
    pub fn syscalls_per_rpc(&self) -> f64 {
        (self.tx_syscalls + self.rx_syscalls + self.ring_enters) as f64
            / self.total_completed.max(1) as f64
    }

    /// `io_uring_enter` calls per completed RPC (io_uring rows only).
    pub fn enters_per_rpc(&self) -> f64 {
        self.ring_enters as f64 / self.total_completed.max(1) as f64
    }

    /// `io_uring_enter` calls per event-loop pass.
    pub fn enters_per_pass(&self) -> f64 {
        self.ring_enters as f64 / self.passes.max(1) as f64
    }
}

fn sum_stats<T: SocketTransport>(rpcs: &[Rpc<T>]) -> TransportStats {
    let mut acc = TransportStats::default();
    for r in rpcs {
        let s = r.transport().stats();
        acc.tx_syscalls += s.tx_syscalls;
        acc.rx_syscalls += s.rx_syscalls;
        acc.ring_enters += s.ring_enters;
        acc.sqe_submitted += s.sqe_submitted;
        acc.cqe_harvested += s.cqe_harvested;
    }
    acc
}

/// Run the symmetric workload over any real-socket transport; `mk`
/// builds endpoint `i`'s transport, bound to loopback.
pub fn run_socket_symmetric<T, F>(
    opts: &UdpSymmetricOpts,
    backend: UdpBackend,
    mk: F,
) -> UdpSymmetricResult
where
    T: SocketTransport,
    F: Fn(Addr) -> T,
{
    assert!(opts.endpoints >= 2);
    // Build every transport, then wire all-to-all routes before handing
    // them to their Rpc endpoints.
    let mut transports: Vec<T> = (0..opts.endpoints)
        .map(|i| mk(Addr::new(i as u16, 0)))
        .collect();
    let locals: Vec<std::net::SocketAddr> = transports
        .iter()
        .map(|t| t.local_addr().expect("local_addr"))
        .collect();
    for (i, t) in transports.iter_mut().enumerate() {
        for (j, at) in locals.iter().enumerate() {
            if i != j {
                t.add_route(Addr::new(j as u16, 0), *at);
            }
        }
    }

    let completed = Rc::new(Cell::new(0u64));
    let measuring = Rc::new(Cell::new(false));
    let hist = Rc::new(RefCell::new(LatencyHistogram::new()));

    struct EpState {
        outstanding: Rc<Cell<usize>>,
        freelist: Rc<RefCell<Vec<(MsgBuf, MsgBuf)>>>,
        sessions: Vec<erpc::SessionHandle>,
        rng: SmallRng,
    }

    let mut rpcs: Vec<Rpc<T>> = Vec::with_capacity(opts.endpoints);
    let mut states: Vec<EpState> = Vec::with_capacity(opts.endpoints);
    for (i, t) in transports.into_iter().enumerate() {
        let mut rpc = Rpc::new(t, opts.rpc_cfg.clone());
        let resp_size = opts.resp_size;
        rpc.register_request_handler(
            ECHO,
            Box::new(move |ctx, _req| {
                let resp = [0x5Au8; 4096];
                ctx.respond(&resp[..resp_size]);
            }),
        );
        rpcs.push(rpc);
        states.push(EpState {
            outstanding: Rc::new(Cell::new(0)),
            freelist: Rc::new(RefCell::new(Vec::new())),
            sessions: Vec::new(),
            rng: SmallRng::seed_from_u64(0xD06 ^ i as u64),
        });
    }
    for i in 0..opts.endpoints {
        for j in 0..opts.endpoints {
            if i != j {
                let s = rpcs[i]
                    .create_session(Addr::new(j as u16, 0))
                    .expect("session");
                states[i].sessions.push(s);
            }
        }
    }
    loop {
        let mut all = true;
        for (rpc, st) in rpcs.iter_mut().zip(&states) {
            rpc.run_event_loop_once();
            all &= st.sessions.iter().all(|&s| rpc.is_connected(s));
        }
        if all {
            break;
        }
    }

    let issue_batch = |rpc: &mut Rpc<T>, st: &mut EpState| {
        for _ in 0..opts.batch {
            let (mut req, resp) = st.freelist.borrow_mut().pop().unwrap_or_else(|| {
                (
                    rpc.alloc_msg_buffer(opts.req_size),
                    rpc.alloc_msg_buffer(opts.resp_size.max(1)),
                )
            });
            req.resize(opts.req_size);
            let sess = st.sessions[st.rng.gen_range(0..st.sessions.len())];
            let (o, c, m, h, fl) = (
                st.outstanding.clone(),
                completed.clone(),
                measuring.clone(),
                hist.clone(),
                st.freelist.clone(),
            );
            let cont = move |_ctx: &mut erpc::ContContext<'_>, comp: erpc::Completion| {
                assert!(comp.result.is_ok(), "rpc failed: {:?}", comp.result);
                o.set(o.get() - 1);
                if m.get() {
                    c.set(c.get() + 1);
                    h.borrow_mut().record(comp.latency_ns);
                }
                fl.borrow_mut().push((comp.req, comp.resp));
            };
            match rpc.enqueue_request(sess, ECHO, req, resp, cont) {
                Ok(()) => st.outstanding.set(st.outstanding.get() + 1),
                Err(e) => {
                    st.freelist.borrow_mut().push((e.req, e.resp));
                    break;
                }
            }
        }
    };

    let passes = Cell::new(0u64);
    let phase = |deadline: Instant, rpcs: &mut [Rpc<T>], states: &mut [EpState]| {
        let mut last_done = u64::MAX;
        loop {
            for _ in 0..16 {
                for (rpc, st) in rpcs.iter_mut().zip(states.iter_mut()) {
                    while st.outstanding.get() + opts.batch <= opts.window {
                        issue_batch(rpc, st);
                    }
                    rpc.run_event_loop_once();
                    passes.set(passes.get() + 1);
                }
            }
            // Unlike the in-process fabric, progress here needs the
            // kernel side (softirq loopback delivery; with SQPOLL, the
            // SQ threads) to get CPU time. On a host with fewer cores
            // than spinning threads, yield instead of burning the whole
            // scheduler slice re-polling an empty completion queue.
            let done = completed.get();
            if done == last_done {
                std::thread::yield_now();
            }
            last_done = done;
            if Instant::now() >= deadline {
                return;
            }
        }
    };

    phase(
        Instant::now() + Duration::from_millis(opts.warmup_ms),
        &mut rpcs,
        &mut states,
    );
    // Measure-window snapshot: everything before this line (connection
    // setup, probe, warmup) is excluded from the syscall accounting.
    let base = sum_stats(&rpcs);
    let passes0 = passes.get();
    measuring.set(true);
    let t0 = Instant::now();
    phase(
        t0 + Duration::from_millis(opts.measure_ms),
        &mut rpcs,
        &mut states,
    );
    let secs = t0.elapsed().as_secs_f64();
    measuring.set(false);
    let end = sum_stats(&rpcs);

    let latency = hist.borrow().clone();
    UdpSymmetricResult {
        backend,
        per_core_rate: completed.get() as f64 / secs,
        total_completed: completed.get(),
        latency,
        passes: passes.get() - passes0,
        tx_syscalls: end.tx_syscalls - base.tx_syscalls,
        rx_syscalls: end.rx_syscalls - base.rx_syscalls,
        ring_enters: end.ring_enters - base.ring_enters,
        sqe_submitted: end.sqe_submitted - base.sqe_submitted,
        cqe_harvested: end.cqe_harvested - base.cqe_harvested,
    }
}

/// Run the symmetric workload on the chosen backend. Returns `None` when
/// the backend cannot run on this kernel (io_uring probe failure), with
/// the typed reason logged — callers print a skip row and move on.
pub fn run_udp_symmetric(
    opts: &UdpSymmetricOpts,
    backend: UdpBackend,
) -> Option<UdpSymmetricResult> {
    let local: std::net::SocketAddr = "127.0.0.1:0".parse().expect("loopback");
    match backend {
        UdpBackend::UdpLoop | UdpBackend::UdpMmsg => {
            let cfg = UdpConfig {
                syscall_batching: backend == UdpBackend::UdpMmsg,
                ..UdpConfig::default()
            };
            Some(run_socket_symmetric(opts, backend, |addr| {
                UdpTransport::bind(addr, local, cfg.clone()).expect("udp bind")
            }))
        }
        UdpBackend::Uring { sqpoll } => {
            #[cfg(target_os = "linux")]
            {
                use erpc_transport::{IoUringTransport, UringConfig};
                let cfg = UringConfig {
                    sqpoll,
                    ..UringConfig::default()
                };
                // Probe once up front so an unavailable kernel skips
                // before any endpoint half-builds.
                if let Err(e) = IoUringTransport::bind(Addr::new(0, 0), local, cfg.clone()) {
                    // lint:allow(no-print): skip-with-log is the contract —
                    // CI output must show *why* an io_uring row is absent.
                    println!("  [skip] {}: {e}", backend.label());
                    return None;
                }
                Some(run_socket_symmetric(opts, backend, |addr| {
                    IoUringTransport::bind(addr, local, cfg.clone()).expect("probe just passed")
                }))
            }
            #[cfg(not(target_os = "linux"))]
            {
                let _ = sqpoll;
                // lint:allow(no-print): skip-with-log, same as above.
                println!("  [skip] {}: io_uring is Linux-only", backend.label());
                None
            }
        }
    }
}

#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;

    #[test]
    fn udp_symmetric_smoke() {
        let opts = UdpSymmetricOpts {
            warmup_ms: 20,
            measure_ms: 60,
            ..Default::default()
        };
        let r = run_udp_symmetric(&opts, UdpBackend::UdpMmsg).expect("udp always runs");
        assert!(r.total_completed > 50, "completed {}", r.total_completed);
        assert!(r.passes > 0);
        assert!(
            r.tx_syscalls + r.rx_syscalls > 0,
            "udp path must cross the kernel"
        );
    }
}
