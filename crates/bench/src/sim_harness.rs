//! Virtual-time harness: eRPC endpoints on the discrete-event fabric,
//! polled by the sim driver with a CPU cost model.

use erpc::{Rpc, RpcConfig};
use erpc_sim::{config::CpuModel, driver, NetHandle, SimConfig, SimNet, SimTransport};
use erpc_transport::Addr;

/// Application logic run before each event-loop pass (issue requests,
/// check deadlines, …).
pub type AppFn = Box<dyn FnMut(&mut Rpc<SimTransport>, u64)>;

/// One polled endpoint: an `Rpc` plus an application step and CPU model.
pub struct Endpoint {
    pub rpc: Rpc<SimTransport>,
    pub cpu: CpuModel,
    /// Extra virtual CPU per handler/continuation (application work).
    pub handler_extra_ns: u64,
    /// Application logic run before each event-loop pass.
    pub app: AppFn,
}

impl driver::PolledEndpoint for Endpoint {
    fn poll(&mut self, now_ns: u64) -> u64 {
        (self.app)(&mut self.rpc, now_ns);
        self.rpc.run_event_loop_once();
        let w = self.rpc.take_work();
        let penalty = self.rpc.transport_mut().take_cpu_penalty_ns();
        self.cpu.idle_poll_ns
            + w.tx_pkts * self.cpu.per_tx_pkt_ns
            + w.rx_pkts * self.cpu.per_rx_pkt_ns
            + w.callbacks * (self.cpu.per_callback_ns + self.handler_extra_ns)
            + (w.rx_bytes as f64 * self.cpu.per_rx_byte_ns) as u64
            + penalty
    }
}

/// A cluster under simulation.
pub struct SimCluster {
    pub net: NetHandle,
    pub endpoints: Vec<Endpoint>,
}

impl SimCluster {
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            net: SimNet::new(cfg).into_handle(),
            endpoints: Vec::new(),
        }
    }

    /// Add an endpoint at `addr`. Returns its index.
    pub fn add_endpoint(
        &mut self,
        addr: Addr,
        rpc_cfg: RpcConfig,
        cpu: CpuModel,
        app: AppFn,
    ) -> usize {
        let t = SimTransport::new(self.net.clone(), addr);
        self.endpoints.push(Endpoint {
            rpc: Rpc::new(t, rpc_cfg),
            cpu,
            handler_extra_ns: 0,
            app,
        });
        self.endpoints.len() - 1
    }

    /// Run until every listed (endpoint, session) pair is connected;
    /// panics if that takes longer than `budget_ns` of virtual time.
    /// Stepped in 100 µs slices so connect retries get to fire.
    pub fn run_until_connected(
        &mut self,
        sessions: &[(usize, erpc::SessionHandle)],
        budget_ns: u64,
    ) {
        let mut pending: Vec<(usize, erpc::SessionHandle)> = sessions.to_vec();
        let mut now = self.net.borrow().now_ns();
        loop {
            pending.retain(|&(i, s)| !self.endpoints[i].rpc.is_connected(s));
            if pending.is_empty() {
                return;
            }
            assert!(now < budget_ns, "sessions failed to connect in budget");
            now += 100_000;
            driver::run(&self.net, &mut self.endpoints, now);
        }
    }

    /// Advance the cluster to virtual time `until_ns`.
    pub fn run(&mut self, until_ns: u64) {
        driver::run(&self.net, &mut self.endpoints, until_ns);
    }

    pub fn now_ns(&self) -> u64 {
        self.net.borrow().now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erpc_sim::{Cluster, Topology};
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn rpc_over_sim_cluster_roundtrip() {
        let mut cfg = Cluster::Cx5.config();
        cfg.topology = Topology::SingleSwitch { hosts: 2 };
        let mut cluster = SimCluster::new(cfg);
        let cpu = Cluster::Cx5.cpu_model();
        let rpc_cfg = RpcConfig {
            ping_interval_ns: 0,
            ..RpcConfig::default()
        };

        cluster.add_endpoint(
            Addr::new(0, 0),
            rpc_cfg.clone(),
            cpu.clone(),
            Box::new(|_rpc, _now| {}),
        );
        let ci = cluster.add_endpoint(Addr::new(1, 0), rpc_cfg, cpu, Box::new(|_rpc, _now| {}));
        // Server: echo handler.
        cluster.endpoints[0].rpc.register_request_handler(
            1,
            Box::new(|ctx, req| {
                let mut v = req.to_vec();
                v.reverse();
                ctx.respond(&v);
            }),
        );
        // Client: session + one request.
        let sess = cluster.endpoints[ci]
            .rpc
            .create_session(Addr::new(0, 0))
            .unwrap();
        cluster.run_until_connected(&[(ci, sess)], 50_000_000);

        let done = Rc::new(Cell::new(0u64));
        let d2 = done.clone();
        let mut req = cluster.endpoints[ci].rpc.alloc_msg_buffer(3);
        req.fill(b"abc");
        let resp = cluster.endpoints[ci].rpc.alloc_msg_buffer(8);
        cluster.endpoints[ci]
            .rpc
            .enqueue_request(sess, 1, req, resp, move |_ctx, comp| {
                assert!(comp.result.is_ok());
                assert_eq!(comp.resp.data(), b"cba");
                d2.set(comp.latency_ns);
            })
            .unwrap();
        let start = cluster.now_ns();
        while done.get() == 0 {
            let next = cluster.now_ns() + 10_000;
            cluster.run(next);
            assert!(cluster.now_ns() - start < 100_000_000, "rpc stalled in sim");
        }
        // Round trip in virtual time: microseconds, not milliseconds.
        let lat = done.get();
        assert!((1_000..50_000).contains(&lat), "latency {lat} ns");
    }
}
