//! Wall-clock harnesses: several `Rpc` endpoints over the lock-free
//! in-process fabric, polled round-robin by **one** OS thread.
//!
//! Why single-threaded: the paper's unit of measurement is *one CPU core*
//! (per-thread rate, one-core bandwidth). Running every endpoint on one
//! core makes our numbers per-core numbers too — each RPC's client *and*
//! server work is on the measured core, exactly like the paper's
//! symmetric workload where each thread is both client and server — and
//! it makes the factor analysis deterministic (no scheduler noise).
//! Worker threads (§3.2) remain real threads.
//!
//! * [`run_symmetric`] — the §6.2 workload shape: E endpoints, all-to-all
//!   sessions, batches of B small RPCs to uniformly random peers, a fixed
//!   in-flight window (paper: 60). Used by Figure 4 and Table 3.
//! * [`run_bandwidth`] — the §6.4 shape: one client streams R-byte
//!   requests (32 B responses) to one server, one request outstanding.
//!   Used by Figure 6 and Table 4 (with injected loss).

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::{Duration, Instant};

use erpc::{LatencyHistogram, MsgBuf, Rpc, RpcConfig, RpcStats};
use erpc_transport::{Addr, MemFabric, MemFabricConfig, MemTransport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ECHO: u8 = 1;

/// Options for the symmetric small-RPC workload.
#[derive(Clone)]
pub struct SymmetricOpts {
    /// Rpc endpoints (the paper's "threads"); all share the measured core.
    pub endpoints: usize,
    /// Requests issued per batch (Figure 4's B).
    pub batch: usize,
    pub req_size: usize,
    pub resp_size: usize,
    /// Target in-flight requests per endpoint (paper: 60).
    pub window: usize,
    pub warmup_ms: u64,
    pub measure_ms: u64,
    pub rpc_cfg: RpcConfig,
    pub fabric_cfg: MemFabricConfig,
}

impl Default for SymmetricOpts {
    fn default() -> Self {
        Self {
            endpoints: 4,
            batch: 3,
            req_size: 32,
            resp_size: 32,
            window: 60,
            warmup_ms: 100,
            measure_ms: 500,
            rpc_cfg: RpcConfig {
                ping_interval_ns: 0,
                ..RpcConfig::default()
            },
            fabric_cfg: MemFabricConfig::default(),
        }
    }
}

/// Result of a symmetric run.
pub struct SymmetricResult {
    /// RPCs completed per second on the measured core. Each completion
    /// implies a client-side *and* a server-side share of work on this
    /// core, so this is directly comparable to the paper's per-thread
    /// rate in the symmetric workload.
    pub per_core_rate: f64,
    /// Total requests completed in the measure window.
    pub total_completed: u64,
    /// Completion latencies (measure window only).
    pub latency: LatencyHistogram,
    /// Total go-back-N retransmissions observed.
    pub retransmissions: u64,
    /// Endpoint counters merged across all endpoints (whole run, incl.
    /// warmup) — the tables print pool hit/miss behavior from this.
    pub stats: RpcStats,
}

struct EpState {
    outstanding: Rc<Cell<usize>>,
    freelist: Rc<RefCell<Vec<(MsgBuf, MsgBuf)>>>,
    sessions: Vec<erpc::SessionHandle>,
    rng: SmallRng,
}

/// Run the symmetric workload; see module docs.
pub fn run_symmetric(opts: SymmetricOpts) -> SymmetricResult {
    assert!(opts.endpoints >= 2);
    let fabric = MemFabric::new(opts.fabric_cfg.clone());
    let completed = Rc::new(Cell::new(0u64));
    let measuring = Rc::new(Cell::new(false));
    let hist = Rc::new(RefCell::new(LatencyHistogram::new()));

    let mut rpcs: Vec<Rpc<MemTransport>> = Vec::with_capacity(opts.endpoints);
    let mut states: Vec<EpState> = Vec::with_capacity(opts.endpoints);
    for i in 0..opts.endpoints {
        let mut rpc = Rpc::new(
            fabric.create_transport(Addr::new(i as u16, 0)),
            opts.rpc_cfg.clone(),
        );
        let resp_size = opts.resp_size;
        rpc.register_request_handler(
            ECHO,
            Box::new(move |ctx, _req| {
                let resp = [0x5Au8; 4096];
                ctx.respond(&resp[..resp_size]);
            }),
        );
        let outstanding = Rc::new(Cell::new(0usize));
        let freelist: Rc<RefCell<Vec<(MsgBuf, MsgBuf)>>> = Rc::new(RefCell::new(Vec::new()));
        rpcs.push(rpc);
        states.push(EpState {
            outstanding,
            freelist,
            sessions: Vec::new(),
            rng: SmallRng::seed_from_u64(0xBEEF ^ i as u64),
        });
    }

    // All-to-all sessions.
    for i in 0..opts.endpoints {
        for j in 0..opts.endpoints {
            if i != j {
                let s = rpcs[i]
                    .create_session(Addr::new(j as u16, 0))
                    .expect("session");
                states[i].sessions.push(s);
            }
        }
    }
    loop {
        let mut all = true;
        for (rpc, st) in rpcs.iter_mut().zip(&states) {
            rpc.run_event_loop_once();
            all &= st.sessions.iter().all(|&s| rpc.is_connected(s));
        }
        if all {
            break;
        }
    }

    let issue_batch = |rpc: &mut Rpc<MemTransport>, st: &mut EpState| {
        for _ in 0..opts.batch {
            // `unwrap_or_else`, not `unwrap_or`: the eager variant
            // allocated two fresh buffers per issued RPC and dropped them
            // (caught by the pool-miss counters — ~2.3 misses/RPC).
            let (mut req, resp) = st.freelist.borrow_mut().pop().unwrap_or_else(|| {
                (
                    rpc.alloc_msg_buffer(opts.req_size),
                    rpc.alloc_msg_buffer(opts.resp_size.max(1)),
                )
            });
            req.resize(opts.req_size);
            let sess = st.sessions[st.rng.gen_range(0..st.sessions.len())];
            let (o, c, m, h, fl) = (
                st.outstanding.clone(),
                completed.clone(),
                measuring.clone(),
                hist.clone(),
                st.freelist.clone(),
            );
            let cont = move |_ctx: &mut erpc::ContContext<'_>, comp: erpc::Completion| {
                assert!(comp.result.is_ok(), "rpc failed: {:?}", comp.result);
                o.set(o.get() - 1);
                if m.get() {
                    c.set(c.get() + 1);
                    h.borrow_mut().record(comp.latency_ns);
                }
                fl.borrow_mut().push((comp.req, comp.resp));
            };
            match rpc.enqueue_request(sess, ECHO, req, resp, cont) {
                Ok(()) => st.outstanding.set(st.outstanding.get() + 1),
                Err(e) => {
                    st.freelist.borrow_mut().push((e.req, e.resp));
                    break;
                }
            }
        }
    };

    let phase = |deadline: Instant, rpcs: &mut [Rpc<MemTransport>], states: &mut [EpState]| {
        // Check the clock every few rounds to keep Instant::now() off the
        // inner loop.
        loop {
            for _ in 0..64 {
                for (rpc, st) in rpcs.iter_mut().zip(states.iter_mut()) {
                    while st.outstanding.get() + opts.batch <= opts.window {
                        issue_batch(rpc, st);
                    }
                    rpc.run_event_loop_once();
                }
            }
            if Instant::now() >= deadline {
                return;
            }
        }
    };

    phase(
        Instant::now() + Duration::from_millis(opts.warmup_ms),
        &mut rpcs,
        &mut states,
    );
    measuring.set(true);
    let t0 = Instant::now();
    phase(
        t0 + Duration::from_millis(opts.measure_ms),
        &mut rpcs,
        &mut states,
    );
    let secs = t0.elapsed().as_secs_f64();
    measuring.set(false);

    let retransmissions = rpcs.iter().map(|r| r.stats().retransmissions).sum();
    let mut stats = RpcStats::default();
    for r in &rpcs {
        stats.merge(r.stats());
    }
    let latency = hist.borrow().clone();
    SymmetricResult {
        per_core_rate: completed.get() as f64 / secs,
        total_completed: completed.get(),
        latency,
        retransmissions,
        stats,
    }
}

/// Options for the one-way bandwidth workload (§6.4).
#[derive(Clone)]
pub struct BandwidthOpts {
    pub req_size: usize,
    /// Transfers to time (after one warmup transfer).
    pub transfers: usize,
    pub rpc_cfg: RpcConfig,
    pub fabric_cfg: MemFabricConfig,
}

impl Default for BandwidthOpts {
    fn default() -> Self {
        Self {
            req_size: 8 << 20,
            transfers: 8,
            rpc_cfg: RpcConfig {
                ping_interval_ns: 0,
                ..RpcConfig::default()
            },
            // Large-MTU fabric, like the 100 Gb InfiniBand rewire (§6.4):
            // 4096 B data + 16 B header per packet.
            fabric_cfg: MemFabricConfig {
                mtu: 4112,
                slot_size: 4224,
                ring_capacity: 8192,
                ..MemFabricConfig::default()
            },
        }
    }
}

/// Result of a bandwidth run.
pub struct BandwidthResult {
    pub goodput_bps: f64,
    pub retransmissions: u64,
}

/// One client streams `req_size`-byte requests to one server (both on the
/// measured core); 32 B responses; one request outstanding.
pub fn run_bandwidth(opts: BandwidthOpts) -> BandwidthResult {
    let fabric = MemFabric::new(opts.fabric_cfg.clone());
    let mut server = Rpc::new(
        fabric.create_transport(Addr::new(0, 0)),
        opts.rpc_cfg.clone(),
    );
    server.register_request_handler(
        ECHO,
        Box::new(|ctx, req| {
            // Touch the request (checksum) so reception is real work, then
            // send the tiny response.
            let sum = req.iter().fold(0u8, |a, &b| a.wrapping_add(b));
            ctx.respond(&[sum; 32]);
        }),
    );
    let mut client = Rpc::new(
        fabric.create_transport(Addr::new(1, 0)),
        opts.rpc_cfg.clone(),
    );
    let sess = client.create_session(Addr::new(0, 0)).expect("session");
    while !client.is_connected(sess) {
        client.run_event_loop_once();
        server.run_event_loop_once();
    }
    let completed = Rc::new(Cell::new(0usize));
    let bufs: Rc<RefCell<Option<(MsgBuf, MsgBuf)>>> = Rc::new(RefCell::new(None));
    let issue = |client: &mut Rpc<MemTransport>| {
        let (mut req, resp) = bufs.borrow_mut().take().unwrap_or_else(|| {
            (
                client.alloc_msg_buffer(opts.req_size),
                client.alloc_msg_buffer(64),
            )
        });
        req.resize(opts.req_size);
        let (c2, b2) = (completed.clone(), bufs.clone());
        client
            .enqueue_request(sess, ECHO, req, resp, move |_ctx, comp| {
                assert!(comp.result.is_ok());
                c2.set(c2.get() + 1);
                *b2.borrow_mut() = Some((comp.req, comp.resp));
            })
            .map_err(|_| ())
            .expect("enqueue");
    };

    // Warmup transfer.
    issue(&mut client);
    while completed.get() < 1 {
        client.run_event_loop_once();
        server.run_event_loop_once();
    }
    // Timed transfers, one outstanding.
    let t0 = Instant::now();
    for i in 0..opts.transfers {
        issue(&mut client);
        while completed.get() < 2 + i {
            client.run_event_loop_once();
            server.run_event_loop_once();
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    BandwidthResult {
        goodput_bps: (opts.transfers * opts.req_size) as f64 * 8.0 / secs,
        retransmissions: client.stats().retransmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_smoke() {
        let r = run_symmetric(SymmetricOpts {
            endpoints: 2,
            warmup_ms: 20,
            measure_ms: 50,
            ..Default::default()
        });
        assert!(r.total_completed > 100, "completed {}", r.total_completed);
        assert!(r.per_core_rate > 1_000.0);
        assert!(r.latency.count() > 0);
    }

    #[test]
    fn bandwidth_smoke() {
        let r = run_bandwidth(BandwidthOpts {
            req_size: 1 << 20,
            transfers: 3,
            ..Default::default()
        });
        // Smoke threshold only: the suite runs many test binaries in
        // parallel, so absolute wall-clock goodput can dip well below the
        // uncontended figure. Real numbers come from the bench targets.
        assert!(r.goodput_bps > 1e7, "goodput {:.2e}", r.goodput_bps);
    }

    #[test]
    fn bandwidth_with_loss_recovers() {
        let r = run_bandwidth(BandwidthOpts {
            req_size: 1 << 20,
            transfers: 2,
            fabric_cfg: MemFabricConfig {
                mtu: 4112,
                slot_size: 4224,
                ring_capacity: 8192,
                loss_prob: 1e-3,
                ..MemFabricConfig::default()
            },
            rpc_cfg: RpcConfig {
                ping_interval_ns: 0,
                rto_ns: 1_000_000,
                ..RpcConfig::default()
            },
        });
        assert!(r.retransmissions > 0);
        assert!(r.goodput_bps > 1e6);
    }
}
