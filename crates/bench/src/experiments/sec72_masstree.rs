//! **§7.2** — Masstree over eRPC: a networked ordered index serving
//! latency-critical GETs alongside longer-running SCANs.
//!
//! Paper (CX3): one server (14 dispatch threads + 2 worker threads),
//! 1 M random 8 B keys → 8 B values; workload = 99 % GET, 1 % SCAN(128);
//! 64 client threads, 2 outstanding each. Results: 14.3 M GET/s,
//! p99 GET = 12 µs with SCANs in worker threads — rising to 26 µs if
//! SCANs run in dispatch threads (head-of-line blocking). Low-load median
//! GET = 2.7 µs.
//!
//! Mode: wall-clock, one polling thread hosting the server dispatch loop
//! and all clients (per-core numbers, like the paper's per-core rate);
//! worker threads are real OS threads that park when idle. The headline
//! *shape*: moving SCANs from dispatch to worker threads cuts the GET
//! tail.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use erpc::{LatencyHistogram, Rpc, RpcConfig};
use erpc_store::Masstree;
use erpc_transport::{Addr, MemFabric, MemFabricConfig, MemTransport};
use parking_lot::RwLock;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::table::{us, Table};

const GET: u8 = 1;
const SCAN: u8 = 2;
const KEYS: u64 = 1_000_000;

fn key_bytes(i: u64) -> [u8; 8] {
    // SplitMix64: deterministic "random" keys both sides can generate.
    let mut z = i.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)).to_be_bytes()
}

pub struct MasstreeResult {
    pub gets_per_sec: f64,
    pub get_latency: LatencyHistogram,
    pub scans: u64,
}

/// Run the workload; `scans_in_worker` selects the §3.2 threading choice
/// under test.
pub fn run_masstree(
    clients: usize,
    scans_in_worker: bool,
    measure_ms: u64,
    scan_pct: u32,
    scan_len: usize,
) -> MasstreeResult {
    let fabric = MemFabric::new(MemFabricConfig::default());

    // Build and load the index once.
    let tree: Arc<RwLock<Masstree<u64>>> = Arc::new(RwLock::new(Masstree::new()));
    {
        let mut t = tree.write();
        for i in 0..KEYS {
            t.put(&key_bytes(i), i);
        }
    }

    // Server endpoint (dispatch loop polled below; SCAN workers are real
    // threads that park when idle).
    let mut server = Rpc::new(
        fabric.create_transport(Addr::new(0, 0)),
        RpcConfig {
            ping_interval_ns: 0,
            num_worker_threads: if scans_in_worker { 2 } else { 0 },
            ..RpcConfig::default()
        },
    );
    let t_get = Arc::clone(&tree);
    server.register_request_handler(
        GET,
        Box::new(move |ctx, req| {
            let key: [u8; 8] = req.try_into().expect("8 B key");
            match t_get.read().get(&key) {
                Some(v) => ctx.respond(&v.to_le_bytes()),
                None => ctx.respond(&[]),
            }
        }),
    );
    // SCAN: sum the values of the next 128 keys. Registered as a worker
    // handler; with num_worker_threads = 0 the registration transparently
    // degrades to dispatch mode — exactly the ablation we want.
    let t_scan = Arc::clone(&tree);
    server.register_worker_handler(
        SCAN,
        Arc::new(move |req: &[u8], out: &mut erpc::MsgBuf| {
            let mut sum = 0u64;
            let mut n = 0;
            t_scan.read().scan_from(req, |_k, v| {
                sum = sum.wrapping_add(*v);
                n += 1;
                n < scan_len
            });
            out.append(&sum.to_le_bytes());
        }),
    );

    // Client endpoints, 2 outstanding each (paper's setting).
    struct Client {
        rpc: Rpc<MemTransport>,
        sess: erpc::SessionHandle,
        outstanding: Rc<Cell<usize>>,
        rng: SmallRng,
    }
    let gets = Rc::new(Cell::new(0u64));
    let scans = Rc::new(Cell::new(0u64));
    let measuring = Rc::new(Cell::new(false));
    let hist = Rc::new(RefCell::new(LatencyHistogram::new()));
    let mut cs: Vec<Client> = Vec::new();
    for cid in 0..clients {
        let mut rpc = Rpc::new(
            fabric.create_transport(Addr::new(1 + cid as u16, 0)),
            RpcConfig {
                ping_interval_ns: 0,
                ..RpcConfig::default()
            },
        );
        let outstanding = Rc::new(Cell::new(0usize));
        let sess = rpc.create_session(Addr::new(0, 0)).expect("session");
        cs.push(Client {
            rpc,
            sess,
            outstanding,
            rng: SmallRng::seed_from_u64(0x5EC72 ^ cid as u64),
        });
    }
    loop {
        server.run_event_loop_once();
        let mut all = true;
        for c in &mut cs {
            c.rpc.run_event_loop_once();
            all &= c.rpc.is_connected(c.sess);
        }
        if all {
            break;
        }
    }

    let phase = |deadline: Instant, server: &mut Rpc<MemTransport>, cs: &mut [Client]| loop {
        for _ in 0..32 {
            for c in cs.iter_mut() {
                while c.outstanding.get() < 2 {
                    // The closure captures whether this is a GET or a SCAN
                    // (the old API routed that through the `tag`).
                    let is_scan = scan_pct > 0 && c.rng.gen_ratio(scan_pct, 100);
                    let ty = if is_scan { SCAN } else { GET };
                    let mut req = c.rpc.alloc_msg_buffer(8);
                    req.fill(&key_bytes(c.rng.gen_range(0..KEYS)));
                    let resp = c.rpc.alloc_msg_buffer(16);
                    let (g, s, o, m, h) = (
                        gets.clone(),
                        scans.clone(),
                        c.outstanding.clone(),
                        measuring.clone(),
                        hist.clone(),
                    );
                    let cont = move |ctx: &mut erpc::ContContext<'_>, comp: erpc::Completion| {
                        assert!(comp.result.is_ok());
                        o.set(o.get() - 1);
                        if !is_scan {
                            if m.get() {
                                g.set(g.get() + 1);
                                h.borrow_mut().record(comp.latency_ns);
                            }
                        } else {
                            s.set(s.get() + 1);
                        }
                        ctx.free_msg_buffer(comp.req);
                        ctx.free_msg_buffer(comp.resp);
                    };
                    if c.rpc.enqueue_request(c.sess, ty, req, resp, cont).is_ok() {
                        c.outstanding.set(c.outstanding.get() + 1);
                    }
                }
                c.rpc.run_event_loop_once();
            }
            server.run_event_loop_once();
        }
        if Instant::now() >= deadline {
            return;
        }
    };

    phase(
        Instant::now() + Duration::from_millis(50),
        &mut server,
        &mut cs,
    );
    measuring.set(true);
    let t0 = Instant::now();
    phase(t0 + Duration::from_millis(measure_ms), &mut server, &mut cs);
    let secs = t0.elapsed().as_secs_f64();
    measuring.set(false);

    let get_latency = hist.borrow().clone();
    MasstreeResult {
        gets_per_sec: gets.get() as f64 / secs,
        get_latency,
        scans: scans.get(),
    }
}

pub fn run() -> String {
    let clients = 4;
    let measure_ms = crate::bench_millis();
    let mut t = Table::new(
        format!("§7.2: Masstree over eRPC ({clients} clients, 99 % GET / 1 % SCAN, one core)"),
        &[
            "scan len",
            "SCAN placement",
            "GET rate",
            "GET p50",
            "GET p99",
            "SCANs run",
        ],
    );
    // SCAN(128) is the paper's workload; SCAN(2048) makes the dispatch-
    // blocking effect visible above this host's scheduler noise (on one
    // core, waking a worker thread costs a context switch comparable to a
    // 128-key scan — on the paper's multi-core server workers run
    // elsewhere).
    for scan_len in [128usize, 2048] {
        for (worker, label) in [(true, "worker threads"), (false, "dispatch thread")] {
            let r = run_masstree(clients, worker, measure_ms, 1, scan_len);
            t.row(&[
                scan_len.to_string(),
                label.to_string(),
                format!("{:.2} M/s", r.gets_per_sec / 1e6),
                us(r.get_latency.percentile(50.0)),
                us(r.get_latency.percentile(99.0)),
                r.scans.to_string(),
            ]);
        }
    }
    // Low-load median (paper: 2.7 µs): one client, GETs only, 1 in flight.
    let low = run_masstree(1, true, measure_ms.min(200), 0, 128);
    t.note(format!(
        "low-load GET p50 (1 client, no scans): {} (paper: 2.7 µs)",
        us(low.get_latency.percentile(50.0))
    ));
    t.note("paper: 14.3 M GET/s over 14 dispatch cores; GET p99 12 µs (workers) vs 26 µs (dispatch-only)");
    let cores = crate::host_cores();
    if cores <= 1 {
        t.note(format!(
            "CAVEAT: this host has {cores} core — worker threads preempt the dispatch loop instead \
             of running elsewhere, so the worker-mode tail *inverts* here; on multi-core hosts \
             worker rows show the paper's shape (workers shield the GET tail, §3.2)"
        ));
    } else {
        t.note("shape to hold: dispatch-mode scans inflate the GET tail; worker threads shield it (§3.2)");
    }
    t.print();
    t.render()
}
