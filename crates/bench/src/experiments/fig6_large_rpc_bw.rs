//! **Figure 6** — Large-transfer goodput vs. request size, one core, vs.
//! RDMA writes on 100 Gbps InfiniBand (§6.4).
//!
//! Paper: client sends R-byte requests (32 B responses), one outstanding,
//! 32 credits; eRPC reaches 75 Gbps at 8 MB and stays ≥70 % of RDMA-write
//! goodput for requests ≥32 kB. Commenting out the server-side memcpy
//! lifts eRPC to 92 Gbps — the copy is the bottleneck.
//!
//! Two modes side by side:
//! * **sim** — the CX5-as-100Gb-IB preset with a per-received-byte copy
//!   cost in the CPU model; reproduces the paper's *shape* (crossover,
//!   ≥70 % ratio, copy-bound plateau) in calibrated virtual time.
//! * **wall-clock** — real threads; absolute Gbps depend on the host's
//!   memory system but the size-scaling shape matches.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use erpc::{MsgBuf, RpcConfig};
use erpc_sim::{Cluster, RdmaNicModel};
use erpc_transport::Addr;

use crate::sim_harness::SimCluster;
use crate::table::Table;
use crate::thread_cluster::{run_bandwidth, BandwidthOpts};

const SINK: u8 = 1;

/// Per-received-byte copy cost in the CPU model (ns/B): calibrated so the
/// one-core copy-bound plateau lands near the paper's 75 Gbps.
pub const RX_COPY_NS_PER_BYTE: f64 = 0.10;

/// Simulated one-core goodput for `req_size`-byte requests on the 100 Gb
/// IB rewire of CX5, in bits/sec of virtual time. `drop_prob` injects
/// random loss (Table 4).
pub fn sim_goodput_bps(
    req_size: usize,
    transfers: u64,
    rx_copy_ns_per_byte: f64,
    drop_prob: f64,
) -> f64 {
    let mut cfg = Cluster::Cx5Ib100.config();
    cfg.faults.drop_prob = drop_prob;
    cfg.seed = 0xF166 ^ (req_size as u64) ^ ((drop_prob * 1e9) as u64);
    let mut sim = SimCluster::new(cfg);
    let cpu = Cluster::Cx5Ib100
        .cpu_model()
        .with_rx_copy_cost(rx_copy_ns_per_byte);
    // Congestion control stays on (as in the paper), with Timely's
    // thresholds scaled to this setup: a CPU-bound receiver legitimately
    // queues ~0.7 ms of packets in its RX ring, which is endpoint backlog,
    // not switch congestion — the paper's datacenter-calibrated 50 µs
    // t_low would misread it and throttle the copy-bound measurement.
    let rpc_cfg = RpcConfig {
        ping_interval_ns: 0,
        link_bps: 100e9,
        // Table 4 reproduces the *paper's* loss behavior, which is a direct
        // consequence of its fixed, conservative 5 ms RTO (§5.2.3) — the
        // 1e-3 goodput cliff vanishes with adaptive RTO (that win is
        // measured separately in the Table 3 ablation).
        opt_adaptive_rto: false,
        cc: erpc::CcAlgorithm::Timely(erpc_congestion::TimelyConfig {
            t_low_ns: 2_000_000,
            t_high_ns: 20_000_000,
            ..erpc_congestion::TimelyConfig::for_link(100e9)
        }),
        ..RpcConfig::default()
    };
    sim.add_endpoint(
        Addr::new(0, 0),
        rpc_cfg.clone(),
        cpu.clone(),
        Box::new(|_, _| {}),
    );
    sim.endpoints[0]
        .rpc
        .register_request_handler(SINK, Box::new(|ctx, _req| ctx.respond(&[0u8; 32])));
    let done = Rc::new(Cell::new(0u64));
    let pending = Rc::new(Cell::new(false));
    let bufs: Rc<RefCell<Option<(MsgBuf, MsgBuf)>>> = Rc::new(RefCell::new(None));
    let sess_cell: Rc<Cell<Option<erpc::SessionHandle>>> = Rc::new(Cell::new(None));
    let (d0, p2, s2, b2) = (
        done.clone(),
        pending.clone(),
        sess_cell.clone(),
        bufs.clone(),
    );
    let ci = sim.add_endpoint(
        Addr::new(1, 0),
        rpc_cfg,
        cpu,
        Box::new(move |rpc, _now| {
            let Some(sess) = s2.get() else { return };
            if !p2.get() && rpc.is_connected(sess) {
                let (mut req, resp) = b2
                    .borrow_mut()
                    .take()
                    .unwrap_or((rpc.alloc_msg_buffer(req_size), rpc.alloc_msg_buffer(64)));
                req.resize(req_size);
                let (d2, p3, b3) = (d0.clone(), p2.clone(), b2.clone());
                let cont = move |_ctx: &mut erpc::ContContext<'_>, comp: erpc::Completion| {
                    assert!(comp.result.is_ok());
                    d2.set(d2.get() + 1);
                    p3.set(false);
                    *b3.borrow_mut() = Some((comp.req, comp.resp));
                };
                if rpc.enqueue_request(sess, SINK, req, resp, cont).is_ok() {
                    p2.set(true);
                }
            }
        }),
    );
    let sess = sim.endpoints[ci]
        .rpc
        .create_session(Addr::new(0, 0))
        .unwrap();
    sess_cell.set(Some(sess));
    sim.run_until_connected(&[(ci, sess)], 100_000_000);

    // Warm up, then count transfers over a window of virtual time. Slices
    // are fine-grained so small transfers are timed accurately.
    let slice = ((req_size as u64) / 50).clamp(2_000, 100_000);
    let mut t = sim.now_ns();
    while done.get() < 1 {
        t += slice;
        sim.run(t);
        assert!(t < 60_000_000_000, "warmup stalled");
    }
    let base = done.get();
    let t0 = sim.now_ns();
    let target = base + transfers;
    while done.get() < target {
        t += slice;
        sim.run(t);
        assert!(t < 600_000_000_000, "transfer stalled");
    }
    let completed = done.get() - base;
    let elapsed = (sim.now_ns() - t0) as f64;
    completed as f64 * req_size as f64 * 8.0 / (elapsed / 1e9)
}

pub fn run() -> String {
    let rdma = RdmaNicModel::default();
    let mut t = Table::new(
        "Figure 6: one-core large-RPC goodput vs. RDMA write (100 Gb IB)",
        &[
            "req size",
            "eRPC sim",
            "RDMA write (model)",
            "sim ratio",
            "eRPC wall-clock",
        ],
    );
    let sizes: &[(usize, &str)] = &[
        (512, "0.5 kB"),
        (4 << 10, "4 kB"),
        (32 << 10, "32 kB"),
        (256 << 10, "256 kB"),
        (2 << 20, "2 MB"),
        (8 << 20, "8 MB"),
    ];
    for &(size, label) in sizes {
        let transfers = if size >= (2 << 20) { 4 } else { 16 };
        let sim_bps = sim_goodput_bps(size, transfers, RX_COPY_NS_PER_BYTE, 0.0);
        let rdma_bps = rdma.write_goodput_gbps(size, 100e9) * 1e9;
        let wall = run_bandwidth(BandwidthOpts {
            req_size: size,
            transfers: if size >= (2 << 20) { 6 } else { 40 },
            ..Default::default()
        });
        t.row(&[
            label.to_string(),
            format!("{:.1} Gbps", sim_bps / 1e9),
            format!("{:.1} Gbps", rdma_bps / 1e9),
            format!("{:.0} %", sim_bps / rdma_bps * 100.0),
            format!("{:.1} Gbps", wall.goodput_bps / 1e9),
        ]);
    }
    t.note("wall-clock column: one shared core drives client+server; absolute Gbps are host-bound and noisy");
    // The "memcpy commented out" datapoint (§6.4).
    let no_copy = sim_goodput_bps(8 << 20, 4, 0.0, 0.0);
    t.note(format!(
        "8 MB with server copy removed: {:.1} Gbps (paper: 92 Gbps vs. 75 Gbps with copy)",
        no_copy / 1e9
    ));
    t.note("paper shape: eRPC ≥70 % of RDMA write for ≥32 kB; 75 Gbps plateau at 8 MB");
    t.print();
    t.render()
}
