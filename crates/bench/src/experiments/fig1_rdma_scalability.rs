//! **Figure 1** — Connection scalability of RDMA NICs (§4.1.2).
//!
//! Paper: 16 B RDMA reads over N connections on ConnectX-5; throughput is
//! flat (~45 M/s) while connections fit the NIC's SRAM connection cache,
//! then declines — ≈50 % lost at 5000 connections — because each cache
//! miss DMA-reads ≈375 B of connection state over PCIe. eRPC's
//! CPU-managed state has no such cliff (§6.3 holds peak at 20 000
//! sessions; see Figure 5's bench).
//!
//! Mode: connection-cache model (LRU over the documented sizes).

use crate::table::Table;
use erpc_sim::RdmaNicModel;

pub fn run() -> String {
    let model = RdmaNicModel::default();
    let mut t = Table::new(
        "Figure 1: RDMA read rate vs. connections per NIC",
        &["connections", "read rate (M/s)", "vs. peak"],
    );
    let peak = model.read_rate_mops(64, 1);
    for &conns in &[64, 250, 500, 1000, 2000, 2796, 3500, 4000, 4500, 5000] {
        let rate = model.read_rate_mops(conns, 1);
        t.row(&[
            conns.to_string(),
            format!("{rate:.1}"),
            format!("{:.0} %", rate / peak * 100.0),
        ]);
    }
    t.note(format!(
        "cache holds {} connections ({} B state, {} KiB effective SRAM)",
        model.cache_entries(),
        model.conn_state_bytes,
        model.cache_bytes / 1024
    ));
    t.note("paper: flat ≈45 M/s, then ≈50 % throughput loss at 5000 connections");
    t.print();
    t.render()
}
