//! **Extension** — the ablation the paper could not run: DCQCN over ECN.
//!
//! §5.2.1: "eRPC includes the hooks and mechanisms to easily implement
//! either Timely or DCQCN. Unfortunately, we are unable to implement
//! DCQCN because none of our clusters performs ECN marking." Our
//! simulated switches *do* mark (RED ramp on egress queues), and the
//! server echoes marks on credit returns and responses (the CNP role), so
//! the comparison the paper wished for is runnable here.
//!
//! Expectation from the congestion-control literature (ECN-or-Delay,
//! CoNEXT 2016): DCQCN's explicit marks give it tighter queue control
//! than Timely's delay gradients at comparable utilization.

use crate::experiments::tab5_incast::{run_incast_cc, CcMode};
use crate::table::{us, Table};

pub fn run() -> String {
    let mut t = Table::new(
        "Extension: congestion-control ablation under incast (CX4, 8 MB flows)",
        &[
            "incast",
            "cc",
            "total bw",
            "RTT p50",
            "RTT p99",
            "ECN marks",
            "drops",
        ],
    );
    for &m in &[20usize, 50] {
        for mode in [CcMode::None, CcMode::Timely, CcMode::Dcqcn] {
            let r = run_incast_cc(m, mode, false, 10_000_000);
            t.row(&[
                m.to_string(),
                format!("{mode:?}"),
                format!("{:.1} Gbps", r.total_goodput_bps / 1e9),
                us(r.rtt.percentile(50.0)),
                us(r.rtt.percentile(99.0)),
                r.ecn_marks_seen.to_string(),
                r.switch_drops.to_string(),
            ]);
        }
    }
    t.note("the paper ships DCQCN hooks but could not evaluate them (no ECN marking, §5.2.1 fn.1)");
    t.note("shape: both controllers cut queueing far below the no-cc credit-window plateau");
    t.print();
    t.render()
}
