//! **Transport ablation** — the kernel-boundary cost ladder, measured.
//!
//! Companion to Table 3's software ablation and ROADMAP item 3: the same
//! symmetric small-RPC workload (fig4 shape, loopback sockets) over the
//! three kernel datapaths, pricing each rung of syscall elimination:
//!
//! 1. per-packet `send_to`/`recv_from` loop — O(packets) syscalls/pass,
//! 2. `sendmmsg`/`recvmmsg` (`syscall_batching`, PR 5) — O(1),
//! 3. io_uring SQ/CQ rings — at most one `io_uring_enter` per pass,
//! 4. io_uring + SQPOLL — O(0): the kernel polls the SQ.
//!
//! io_uring rows run only where the runtime probe succeeds (seccomp or
//! an old kernel yields a typed `Unavailable`); the probe result itself
//! is printed so CI logs show *why* a row is missing.

use crate::table::{mrps, us, Table};
use crate::udp_cluster::{run_udp_symmetric, UdpBackend, UdpSymmetricOpts};

fn fmt_rate(v: f64) -> String {
    if v >= 0.095 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

pub fn run() -> String {
    let opts = UdpSymmetricOpts {
        measure_ms: crate::bench_millis(),
        ..Default::default()
    };
    let mut t = Table::new(
        format!(
            "Transport ablation: symmetric {} B RPCs over loopback sockets ({} endpoints, one core, window {})",
            opts.req_size, opts.endpoints, opts.window
        ),
        &[
            "backend",
            "Mrps",
            "p50",
            "p99",
            "syscalls/RPC",
            "enters/RPC",
            "enters/pass",
        ],
    );
    #[cfg(target_os = "linux")]
    {
        use erpc_transport::IoUringTransport;
        match IoUringTransport::probe() {
            Ok(()) => t.note("io_uring probe: ok"),
            Err(e) => t.note(format!("io_uring probe: {e}")),
        };
    }
    #[cfg(not(target_os = "linux"))]
    t.note("io_uring probe: skipped (Linux-only backend)");

    let backends = [
        UdpBackend::UdpLoop,
        UdpBackend::UdpMmsg,
        UdpBackend::Uring { sqpoll: false },
        UdpBackend::Uring { sqpoll: true },
    ];
    for backend in backends {
        let Some(r) = run_udp_symmetric(&opts, backend) else {
            t.row(&[
                backend.label().to_string(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
            ]);
            continue;
        };
        t.row(&[
            backend.label().to_string(),
            mrps(r.per_core_rate),
            us(r.latency.percentile(50.0)),
            us(r.latency.percentile(99.0)),
            fmt_rate(r.syscalls_per_rpc()),
            fmt_rate(r.enters_per_rpc()),
            fmt_rate(r.enters_per_pass()),
        ]);
        // Acceptance gates (ROADMAP item 3): without SQPOLL at most one
        // enter per event-loop pass; with it, sub-syscall-per-RPC.
        match backend {
            UdpBackend::Uring { sqpoll: false } => {
                assert!(
                    r.enters_per_pass() <= 1.0 + 1e-9,
                    "io_uring must cost ≤ 1 enter per pass, got {:.3}",
                    r.enters_per_pass()
                );
            }
            UdpBackend::Uring { sqpoll: true } => {
                // Gate only on a meaningful sample: on a host without
                // spare cores for the SQ-polling threads, a short window
                // completes a handful of RPCs and the ratio is park-wakeup
                // noise, not steady state.
                if r.total_completed >= 200 {
                    assert!(
                        r.enters_per_rpc() < 1.0,
                        "SQPOLL steady state must beat 1 enter/RPC, got {:.3} ({} enters / {} RPCs)",
                        r.enters_per_rpc(),
                        r.ring_enters,
                        r.total_completed
                    );
                }
                // SQPOLL's polling threads (one per ring) need spare
                // cores; when the host can't grant them, throughput is
                // scheduler-rotation-bound — say so in the output rather
                // than leaving a mysteriously slow row.
                if crate::host_cores() < opts.endpoints + 1 {
                    t.note(format!(
                        "SQPOLL row is core-starved: {} endpoints want {} SQ-polling threads + 1 app core, host has {}",
                        opts.endpoints,
                        opts.endpoints,
                        crate::host_cores()
                    ));
                }
            }
            _ => {}
        }
    }
    t.note(
        "syscalls/RPC counts send+recv syscalls plus io_uring_enter, measure-window deltas only",
    );
    t.note("the per-packet loop is the `syscall_batching = false` ablation; sendmmsg is PR 5's O(1) rung");
    t.note("SQPOLL trades one kernel polling thread for a zero-syscall submit path (idle → one wakeup enter)");
    t.print();
    t.render()
}
