//! **Table 2** — Median latency of 32 B RPCs vs. RDMA reads, same-ToR
//! pairs on each cluster (§6.1).
//!
//! Paper:  CX3 (IB)  eRPC 2.1 µs / RDMA 1.7 µs
//!         CX4 (Eth) eRPC 3.7 µs / RDMA 2.9 µs
//!         CX5 (Eth) eRPC 2.3 µs / RDMA 2.0 µs
//!
//! Mode: virtual time. eRPC runs for real on the simulated fabric (every
//! packet simulated); the RDMA baseline is the NIC model.

use std::cell::RefCell;
use std::rc::Rc;

use erpc::{LatencyHistogram, RpcConfig};
use erpc_sim::{Cluster, Topology};
use erpc_transport::Addr;

use crate::sim_harness::SimCluster;
use crate::table::{us, Table};

const ECHO: u8 = 1;

/// Measured median eRPC latency on a cluster preset, virtual ns, plus
/// the endpoints' msgbuf-pool (miss, hit) counters for the table's pool
/// note.
pub fn erpc_median_latency_ns(cluster: Cluster, rpcs: u64) -> (u64, u64, u64, u64) {
    let mut cfg = cluster.config();
    cfg.topology = Topology::SingleSwitch { hosts: 2 };
    let mut sim = SimCluster::new(cfg);
    let cpu = cluster.cpu_model();
    let rpc_cfg = RpcConfig {
        ping_interval_ns: 0,
        link_bps: cluster.config().link_bps,
        ..RpcConfig::default()
    };
    sim.add_endpoint(
        Addr::new(0, 0),
        rpc_cfg.clone(),
        cpu.clone(),
        Box::new(|_, _| {}),
    );
    sim.endpoints[0].rpc.register_request_handler(
        ECHO,
        Box::new(|ctx, req| {
            debug_assert_eq!(req.len(), 32);
            ctx.respond(&[0u8; 32]);
        }),
    );

    // Client: closed loop, one outstanding (latency mode). The request's
    // continuation records the latency and re-arms the loop.
    let hist = Rc::new(RefCell::new(LatencyHistogram::new()));
    let pending = Rc::new(std::cell::Cell::new(false));
    let h2 = hist.clone();
    let p2 = pending.clone();
    let sess_cell: Rc<std::cell::Cell<Option<erpc::SessionHandle>>> =
        Rc::new(std::cell::Cell::new(None));
    let s2 = sess_cell.clone();
    let ci = sim.add_endpoint(
        Addr::new(1, 0),
        rpc_cfg,
        cpu,
        Box::new(move |rpc, _now| {
            let Some(sess) = s2.get() else { return };
            if !p2.get() && rpc.is_connected(sess) {
                let mut req = rpc.alloc_msg_buffer(32);
                req.resize(32);
                let resp = rpc.alloc_msg_buffer(32);
                let (h3, p3) = (h2.clone(), p2.clone());
                let cont = move |ctx: &mut erpc::ContContext<'_>, comp: erpc::Completion| {
                    assert!(comp.result.is_ok());
                    h3.borrow_mut().record(comp.latency_ns);
                    ctx.free_msg_buffer(comp.req);
                    ctx.free_msg_buffer(comp.resp);
                    p3.set(false);
                };
                if rpc.enqueue_request(sess, ECHO, req, resp, cont).is_ok() {
                    p2.set(true);
                }
            }
        }),
    );
    let sess = sim.endpoints[ci]
        .rpc
        .create_session(Addr::new(0, 0))
        .unwrap();
    sess_cell.set(Some(sess));
    sim.run_until_connected(&[(ci, sess)], 100_000_000);

    let mut t = sim.now_ns();
    while hist.borrow().count() < rpcs {
        t += 1_000_000;
        sim.run(t);
        assert!(t < 60_000_000_000, "latency run stalled");
    }
    let p50 = hist.borrow().percentile(50.0);
    let (mut pool_new, mut pool_reused) = (0u64, 0u64);
    let mut robust = 0u64;
    for ep in &sim.endpoints {
        pool_new += ep.rpc.stats().pool_allocs_new;
        pool_reused += ep.rpc.stats().pool_allocs_reused;
        robust += ep.rpc.stats().rto_events
            + ep.rpc.stats().retransmissions
            + ep.rpc.stats().sessions_reset_incarnation;
    }
    (p50, pool_new, pool_reused, robust)
}

pub fn run() -> String {
    let mut t = Table::new(
        "Table 2: median small-RPC latency vs. RDMA read (same ToR)",
        &[
            "cluster",
            "eRPC (sim)",
            "eRPC (paper)",
            "RDMA read (model)",
            "RDMA read (paper)",
        ],
    );
    let rows = [
        (Cluster::Cx3, "CX3 (InfiniBand)", "2.1 µs", "1.7 µs"),
        (Cluster::Cx4, "CX4 (Ethernet)", "3.7 µs", "2.9 µs"),
        (Cluster::Cx5, "CX5 (Ethernet)", "2.3 µs", "2.0 µs"),
    ];
    let (mut pool_new, mut pool_reused) = (0u64, 0u64);
    let mut robust = 0u64;
    for (cluster, name, paper_erpc, paper_rdma) in rows {
        let (e, pn, pr, rb) = erpc_median_latency_ns(cluster, 300);
        robust += rb;
        pool_new += pn;
        pool_reused += pr;
        let r = cluster.rdma_read_latency_ns();
        t.row(&[
            name.to_string(),
            us(e),
            paper_erpc.to_string(),
            us(r),
            paper_rdma.to_string(),
        ]);
    }
    t.note("shape to hold: both µs-scale; eRPC within ≈0.8 µs of RDMA reads on every cluster");
    t.note(format!(
        "msgbuf pool: {pool_new} misses / {pool_reused} hits across all clusters — closed-loop latency runs recycle two buffers forever"
    ));
    t.note(format!(
        "robustness: {robust} RTO events + retransmits + incarnation resets across all clusters (expect 0: lossless sim, no restarts)"
    ));
    t.print();
    t.render()
}
