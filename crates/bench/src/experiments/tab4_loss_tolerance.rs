//! **Table 4** — 8 MB request throughput under injected packet loss
//! (§6.4).
//!
//! Paper (100 Gb IB, 5 ms RTO):
//!
//! | loss rate | 1e-7 | 1e-6 | 1e-5 | 1e-4 | 1e-3 |
//! | goodput   | 73   | 71   | 57   | 18   | 2.5 Gbps |
//!
//! eRPC stays usable to ~0.01 % loss — enough for packet corruption — and
//! then collapses because every loss costs a full 5 ms go-back-N timeout.
//!
//! Mode: virtual time (the 100 Gb IB sim of Figure 6, with injected
//! loss). The collapse arithmetic is the paper's: an 8 MB transfer takes
//! under a millisecond at ~80 Gbps, so each loss — costing one 5 ms
//! go-back-N timeout — erases several transfers' worth of time. Wall-
//! clock would hide the cliff on slow hosts where the base transfer
//! already takes ≫ 5 ms.

use crate::experiments::fig6_large_rpc_bw::{sim_goodput_bps, RX_COPY_NS_PER_BYTE};
use crate::table::Table;

pub fn run() -> String {
    let mut t = Table::new(
        "Table 4: 8 MB request goodput vs. injected loss (RTO 5 ms, sim)",
        &["loss rate", "goodput", "paper"],
    );
    let paper = ["73 Gbps", "71 Gbps", "57 Gbps", "18 Gbps", "2.5 Gbps"];
    let rates: &[(f64, &str, u64)] = &[
        (1e-7, "1e-7", 12),
        (1e-6, "1e-6", 12),
        (1e-5, "1e-5", 16),
        (1e-4, "1e-4", 16),
        (1e-3, "1e-3", 6),
    ];
    for (i, &(loss, label, transfers)) in rates.iter().enumerate() {
        let bps = sim_goodput_bps(8 << 20, transfers, RX_COPY_NS_PER_BYTE, loss);
        t.row(&[
            label.to_string(),
            format!("{:.1} Gbps", bps / 1e9),
            paper[i].to_string(),
        ]);
    }
    t.note("shape to hold: near-flat through 1e-6, usable at 1e-5/1e-4, collapsed at 1e-3 (every loss costs a 5 ms RTO)");
    t.print();
    t.render()
}
