//! **Table 6 / §7.1** — Latency of 3-way replicated PUTs: Raft over eRPC
//! vs. specialized systems.
//!
//! Paper (CX5, 16 B keys / 64 B values, client-measured):
//!
//! |                       | p50    | p99    |
//! | NetChain (P4 switch)  | 9.7 µs | n/a    |
//! | eRPC (Raft, client)   | 5.5 µs | 6.3 µs |
//! | ZabFPGA (at leader)   | 3.0 µs | 3.0 µs |
//! | eRPC (Raft, leader)   | 3.1 µs | 3.4 µs |
//!
//! Mode: virtual time on the CX5 preset; the full Raft-over-eRPC stack
//! runs packet by packet. NetChain/ZabFPGA rows are the paper's published
//! numbers (the paper also compares against publications, lacking their
//! hardware — as do we).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use erpc::{LatencyHistogram, MsgBuf, RpcConfig, SessionHandle};
use erpc_raft::{encode_put, RaftConfig, Replica, KV_PUT, ST_OK};
use erpc_sim::{
    config::CpuModel, driver, driver::PolledEndpoint, Cluster, SimNet, SimTransport, Topology,
};
use erpc_transport::Addr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::table::{us, Table};

/// Either role, so one driver vector holds the whole system.
enum Ep {
    Replica(Replica<SimTransport>, CpuModel),
    Client {
        rpc: erpc::Rpc<SimTransport>,
        cpu: CpuModel,
        app: crate::sim_harness::AppFn,
    },
}

impl PolledEndpoint for Ep {
    fn poll(&mut self, now_ns: u64) -> u64 {
        let (w, penalty, cpu) = match self {
            Ep::Replica(r, cpu) => {
                r.poll();
                (
                    r.rpc.take_work(),
                    r.rpc.transport_mut().take_cpu_penalty_ns(),
                    cpu.clone(),
                )
            }
            Ep::Client { rpc, cpu, app } => {
                app(rpc, now_ns);
                rpc.run_event_loop_once();
                (
                    rpc.take_work(),
                    rpc.transport_mut().take_cpu_penalty_ns(),
                    cpu.clone(),
                )
            }
        };
        cpu.idle_poll_ns
            + w.tx_pkts * cpu.per_tx_pkt_ns
            + w.rx_pkts * cpu.per_rx_pkt_ns
            + w.callbacks * cpu.per_callback_ns
            + penalty
    }
}

pub struct RaftLatency {
    pub client: LatencyHistogram,
    pub leader_commit: LatencyHistogram,
}

/// Measure `puts` replicated PUTs (16 B keys, 64 B values, one
/// outstanding) and return client- and leader-side latency histograms.
pub fn run_raft_latency(puts: u64) -> RaftLatency {
    let mut cfg = Cluster::Cx5.config();
    cfg.topology = Topology::SingleSwitch { hosts: 4 };
    let net = SimNet::new(cfg).into_handle();
    let cpu = Cluster::Cx5.cpu_model();
    let rpc_cfg = RpcConfig {
        ping_interval_ns: 0,
        link_bps: 40e9,
        ..RpcConfig::default()
    };
    // Raft timers in virtual time: µs-scale heartbeats (datacenter SMR).
    let raft_cfg = RaftConfig {
        election_timeout_min_ns: 400_000,
        election_timeout_max_ns: 900_000,
        heartbeat_interval_ns: 100_000,
        max_batch: 16,
    };
    let addrs: Vec<Addr> = (0..3u16).map(|i| Addr::new(i, 0)).collect();
    let mut eps: Vec<Ep> = Vec::new();
    for i in 0..3usize {
        let peers: HashMap<u32, Addr> = (0..3)
            .filter(|&j| j != i)
            .map(|j| (j as u32, addrs[j]))
            .collect();
        let replica = Replica::new(
            SimTransport::new(net.clone(), addrs[i]),
            rpc_cfg.clone(),
            raft_cfg.clone(),
            i as u32,
            &peers,
            0x7AB6,
        );
        eps.push(Ep::Replica(replica, cpu.clone()));
    }

    // Let replication sessions connect and a stable leader emerge.
    let mut now = 0u64;
    let leader = loop {
        now += 200_000;
        driver::run(&net, &mut eps, now);
        assert!(now < 60_000_000_000, "no leader in sim");
        let leaders: Vec<usize> = eps
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, Ep::Replica(r, _) if r.is_leader()))
            .map(|(i, _)| i)
            .collect();
        if leaders.len() == 1 {
            break leaders[0];
        }
    };

    // Client: closed loop, one outstanding PUT to the leader.
    let hist = Rc::new(RefCell::new(LatencyHistogram::new()));
    let pending = Rc::new(Cell::new(false));
    let bufs: Rc<RefCell<Option<(MsgBuf, MsgBuf)>>> = Rc::new(RefCell::new(None));
    let sess_cell: Rc<Cell<Option<SessionHandle>>> = Rc::new(Cell::new(None));
    let mut rng = SmallRng::seed_from_u64(0xC11E27);
    let (p2, b2, s2, h2) = (
        pending.clone(),
        bufs.clone(),
        sess_cell.clone(),
        hist.clone(),
    );
    let mut client_rpc = erpc::Rpc::new(
        SimTransport::new(net.clone(), Addr::new(3, 0)),
        rpc_cfg.clone(),
    );
    let sess = client_rpc.create_session(addrs[leader]).unwrap();
    sess_cell.set(Some(sess));
    let app = Box::new(move |rpc: &mut erpc::Rpc<SimTransport>, _now: u64| {
        let Some(sess) = s2.get() else { return };
        if !p2.get() && rpc.is_connected(sess) {
            // PUT: 16 B key (uniform over 1 M), 64 B value (§7.1 workload).
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&rng.gen_range(0..1_000_000u64).to_le_bytes());
            let mut body = Vec::with_capacity(96);
            encode_put(&key, &[0xAB; 64], &mut body);
            let (mut req, resp) = b2
                .borrow_mut()
                .take()
                .unwrap_or((rpc.alloc_msg_buffer(96), rpc.alloc_msg_buffer(16)));
            req.fill(&body);
            let (h3, p3, b3) = (h2.clone(), p2.clone(), b2.clone());
            let cont = move |_ctx: &mut erpc::ContContext<'_>, comp: erpc::Completion| {
                assert!(comp.result.is_ok());
                assert_eq!(comp.resp.data(), &[ST_OK]);
                h3.borrow_mut().record(comp.latency_ns);
                p3.set(false);
                *b3.borrow_mut() = Some((comp.req, comp.resp));
            };
            if rpc.enqueue_request(sess, KV_PUT, req, resp, cont).is_ok() {
                p2.set(true);
            }
        }
    });
    eps.push(Ep::Client {
        rpc: client_rpc,
        cpu: cpu.clone(),
        app,
    });

    // Warm up a few PUTs, then measure.
    while hist.borrow().count() < 20 {
        now += 200_000;
        driver::run(&net, &mut eps, now);
        assert!(now < 120_000_000_000, "warmup stalled");
    }
    hist.borrow_mut().clear();
    let commit_base = match &eps[leader] {
        Ep::Replica(r, _) => r.commit_latency_histogram().count(),
        _ => unreachable!(),
    };
    while hist.borrow().count() < puts {
        now += 200_000;
        driver::run(&net, &mut eps, now);
        assert!(now < 600_000_000_000, "measurement stalled");
    }
    let leader_commit = match &eps[leader] {
        Ep::Replica(r, _) => {
            let h = r.commit_latency_histogram();
            assert!(h.count() > commit_base);
            h.clone()
        }
        _ => unreachable!(),
    };
    let client = hist.borrow().clone();
    RaftLatency {
        client,
        leader_commit,
    }
}

pub fn run() -> String {
    let r = run_raft_latency(500);
    let mut t = Table::new(
        "Table 6: 3-way replicated PUT latency (16 B keys, 64 B values)",
        &["measurement", "system", "p50", "p99"],
    );
    t.row(&[
        "client".into(),
        "NetChain (paper)".into(),
        "9.7 µs".into(),
        "n/a".into(),
    ]);
    t.row(&[
        "client".into(),
        "Raft over eRPC (paper)".into(),
        "5.5 µs".into(),
        "6.3 µs".into(),
    ]);
    t.row(&[
        "client".into(),
        "Raft over eRPC (sim)".into(),
        us(r.client.percentile(50.0)),
        us(r.client.percentile(99.0)),
    ]);
    t.row(&[
        "leader".into(),
        "ZabFPGA (paper)".into(),
        "3.0 µs".into(),
        "3.0 µs".into(),
    ]);
    t.row(&[
        "leader".into(),
        "Raft over eRPC (paper)".into(),
        "3.1 µs".into(),
        "3.4 µs".into(),
    ]);
    t.row(&[
        "leader".into(),
        "Raft over eRPC (sim)".into(),
        us(r.leader_commit.percentile(50.0)),
        us(r.leader_commit.percentile(99.0)),
    ]);
    t.note("shape to hold: client-side replication in single-digit µs, beating NetChain's 9.7 µs;");
    t.note("leader-side commit ≈ one leader↔follower RTT, competitive with FPGAs");
    t.print();
    t.render()
}
