//! **Appendix A** — eRPC's NIC memory footprint is constant per core.
//!
//! Four on-NIC structures matter: TX queue (64 entries suffice), TX CQ
//! (64), RQ descriptors (÷512 with multi-packet RQs), RX CQ (8, allowed
//! to overrun). None grows with cluster size — unlike RDMA's per-
//! connection state.

use crate::table::Table;
use erpc_sim::NicFootprintConfig;

pub fn run() -> String {
    let cfg = NicFootprintConfig::default();
    let mut t = Table::new(
        "Appendix A: on-NIC memory footprint per core",
        &["cluster connections", "eRPC (B)", "RDMA verbs (B)"],
    );
    for &conns in &[10usize, 100, 1_000, 5_000, 20_000] {
        t.row(&[
            conns.to_string(),
            cfg.erpc_bytes().to_string(),
            cfg.rdma_bytes(conns).to_string(),
        ]);
    }
    let trad = NicFootprintConfig {
        rq_multi_packet: 1,
        ..cfg.clone()
    };
    t.note(format!(
        "multi-packet RQ (512-way): {} B; traditional RQ descriptors: {} B",
        cfg.erpc_bytes(),
        trad.erpc_bytes()
    ));
    t.note(
        "paper: eRPC footprint independent of cluster size; 5000 RDMA conns ≈ 1.8 MB > NIC SRAM",
    );
    t.print();
    t.render()
}
