//! **Table 5 / §6.5** — Effectiveness of congestion control during incast
//! on the CX4 cluster.
//!
//! Paper (8 MB requests, one flow per client node, victim under one ToR):
//!
//! | incast | total bw  | p50 RTT | p99 RTT |
//! | 20     | 21.8 Gbps | 39 µs   | 67 µs   |
//! | 20 ncc | 23.1 Gbps | 202 µs  | 204 µs  |
//! | 50     | 18.4 Gbps | 34 µs   | 174 µs  |
//! | 50 ncc | 23.0 Gbps | 524 µs  | 524 µs  |
//! | 100    | 22.8 Gbps | 349 µs  | 969 µs  |
//! | 100ncc | 23.0 Gbps | 1056 µs | 1060 µs |
//!
//! The underlying arithmetic the simulation reproduces exactly: without
//! cc, each of M senders keeps C = 32 packets (≈34 kB) in flight, so the
//! victim ToR port queues ≈ M × 34 kB — still below the 12 MB shared
//! buffer (no loss! that is the BDP-flow-control claim), but queueing
//! delay grows to M × 34 kB / 25 Gbps. Timely caps the queue instead.
//!
//! We report client-measured per-packet RTTs (the paper's switch-queue
//! proxy) *and* the true switch queue depth, which only a simulator can
//! see. Mode: virtual time.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use erpc::{CcAlgorithm, LatencyHistogram, MsgBuf, RpcConfig, SessionHandle};
use erpc_congestion::{DcqcnConfig, TimelyConfig};
use erpc_sim::{Cluster, EcnConfig};
use erpc_transport::{Addr, Transport};

use crate::sim_harness::SimCluster;
use crate::table::{us, Table};

const SINK: u8 = 1;

pub struct IncastResult {
    pub total_goodput_bps: f64,
    pub rtt: LatencyHistogram,
    pub victim_port_max_queue: usize,
    pub switch_drops: u64,
    /// ECN-marked packets observed by clients (DCQCN mode).
    pub ecn_marks_seen: u64,
    /// §6.5 background 64 kB RPC latencies (when enabled).
    pub background: Option<LatencyHistogram>,
}

/// Congestion-control mode for incast runs. `Dcqcn` also turns on ECN
/// marking at the simulated switches — the configuration the paper's
/// testbeds could not provide (§5.2.1, footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcMode {
    None,
    Timely,
    Dcqcn,
}

/// Run an `m`-way incast for `measure_ns` of virtual time.
pub fn run_incast(m: usize, cc: bool, background: bool, measure_ns: u64) -> IncastResult {
    run_incast_cc(
        m,
        if cc { CcMode::Timely } else { CcMode::None },
        background,
        measure_ns,
    )
}

/// Run an `m`-way incast with an explicit congestion-control mode.
pub fn run_incast_cc(m: usize, mode: CcMode, background: bool, measure_ns: u64) -> IncastResult {
    let mut cfg = Cluster::Cx4.config(); // 100 hosts, 5 ToRs, 12 MB buffers
    assert!(m < 99);
    if mode == CcMode::Dcqcn {
        // RED-style marking at DCQCN's recommended queue thresholds,
        // scaled to the 25 GbE queue depths seen here; the switch sets the
        // ECN bit in the eRPC header, and receivers echo it (CNP role).
        cfg.ecn = Some(EcnConfig {
            kmin_bytes: 64 << 10,
            kmax_bytes: 400 << 10,
            pmax: 0.2,
            flag_byte: erpc::ECN_BYTE,
            flag_mask: erpc::ECN_MASK,
        });
    }
    let mut sim = SimCluster::new(cfg);
    let cpu = Cluster::Cx4.cpu_model();
    let rpc_cfg = RpcConfig {
        ping_interval_ns: 0,
        record_rtt_samples: true,
        link_bps: 25e9,
        cc: match mode {
            CcMode::Timely => CcAlgorithm::Timely(TimelyConfig::for_link(25e9)),
            CcMode::Dcqcn => CcAlgorithm::Dcqcn(DcqcnConfig::for_link(25e9)),
            CcMode::None => CcAlgorithm::None,
        },
        ..RpcConfig::default()
    };

    // Victim: node 0, endpoint 0.
    let victim = Addr::new(0, 0);
    sim.add_endpoint(victim, rpc_cfg.clone(), cpu.clone(), Box::new(|_, _| {}));
    sim.endpoints[0]
        .rpc
        .register_request_handler(SINK, Box::new(|ctx, _req| ctx.respond(&[0u8; 32])));

    // Senders: one endpoint per client node, one 8 MB request at a time.
    // Spread across all nodes 1..=m (some share the victim's ToR, most
    // don't — like the paper's cluster-wide incast).
    let mut to_connect = Vec::new();
    for s in 0..m {
        let addr = Addr::new(1 + s as u16, 0);
        let sess_cell: Rc<Cell<Option<SessionHandle>>> = Rc::new(Cell::new(None));
        let pending = Rc::new(Cell::new(false));
        let bufs: Rc<RefCell<Option<(MsgBuf, MsgBuf)>>> = Rc::new(RefCell::new(None));
        let (s2, p2, b2) = (sess_cell.clone(), pending.clone(), bufs.clone());
        let idx = sim.add_endpoint(
            addr,
            rpc_cfg.clone(),
            cpu.clone(),
            Box::new(move |rpc, _now| {
                let Some(sess) = s2.get() else { return };
                if !p2.get() && rpc.is_connected(sess) {
                    let (mut req, resp) = b2
                        .borrow_mut()
                        .take()
                        .unwrap_or((rpc.alloc_msg_buffer(8 << 20), rpc.alloc_msg_buffer(64)));
                    req.resize(8 << 20);
                    let (p3, b3) = (p2.clone(), b2.clone());
                    let cont = move |_ctx: &mut erpc::ContContext<'_>, comp: erpc::Completion| {
                        assert!(comp.result.is_ok());
                        p3.set(false);
                        *b3.borrow_mut() = Some((comp.req, comp.resp));
                    };
                    if rpc.enqueue_request(sess, SINK, req, resp, cont).is_ok() {
                        p2.set(true);
                    }
                }
            }),
        );
        let sess = sim.endpoints[idx].rpc.create_session(victim).unwrap();
        sess_cell.set(Some(sess));
        to_connect.push((idx, sess));
    }

    // Optional §6.5 background pair on non-victim nodes (64 kB each way).
    let bg_hist = Rc::new(RefCell::new(LatencyHistogram::new()));
    if background {
        let server_addr = Addr::new(99, 1);
        let si = sim.add_endpoint(
            server_addr,
            rpc_cfg.clone(),
            cpu.clone(),
            Box::new(|_, _| {}),
        );
        sim.endpoints[si]
            .rpc
            .register_request_handler(SINK, Box::new(|ctx, _req| ctx.respond(&[7u8; 64 << 10])));
        let sess_cell: Rc<Cell<Option<SessionHandle>>> = Rc::new(Cell::new(None));
        let pending = Rc::new(Cell::new(false));
        let (s2, p2, h0) = (sess_cell.clone(), pending.clone(), bg_hist.clone());
        let ci = sim.add_endpoint(
            Addr::new(98, 1),
            rpc_cfg.clone(),
            cpu.clone(),
            Box::new(move |rpc, _now| {
                let Some(sess) = s2.get() else { return };
                if !p2.get() && rpc.is_connected(sess) {
                    let mut req = rpc.alloc_msg_buffer(64 << 10);
                    req.resize(64 << 10);
                    let resp = rpc.alloc_msg_buffer(64 << 10);
                    let (h2, p3) = (h0.clone(), p2.clone());
                    let cont = move |ctx: &mut erpc::ContContext<'_>, comp: erpc::Completion| {
                        assert!(comp.result.is_ok());
                        h2.borrow_mut().record(comp.latency_ns);
                        ctx.free_msg_buffer(comp.req);
                        ctx.free_msg_buffer(comp.resp);
                        p3.set(false);
                    };
                    if rpc.enqueue_request(sess, SINK, req, resp, cont).is_ok() {
                        p2.set(true);
                    }
                }
            }),
        );
        let sess = sim.endpoints[ci].rpc.create_session(server_addr).unwrap();
        sess_cell.set(Some(sess));
        to_connect.push((ci, sess));
    }

    sim.run_until_connected(&to_connect, 10_000_000_000);

    // Warmup: let the incast build and Timely converge.
    let warm = sim.now_ns() + measure_ns / 2;
    sim.run(warm);
    for e in sim.endpoints.iter_mut().skip(1) {
        e.rpc.clear_rtt_histogram();
    }
    bg_hist.borrow_mut().clear();
    let rx0 = sim.endpoints[0].rpc.transport().stats().rx_bytes;
    let t0 = sim.now_ns();
    sim.run(t0 + measure_ns);
    let secs = (sim.now_ns() - t0) as f64 / 1e9;
    let rx1 = sim.endpoints[0].rpc.transport().stats().rx_bytes;

    let mut rtt = LatencyHistogram::new();
    let mut ecn_marks_seen = 0;
    for (i, e) in sim.endpoints.iter().enumerate() {
        if i >= 1 && i <= m {
            rtt.merge(e.rpc.rtt_histogram());
            ecn_marks_seen += e.rpc.stats().ecn_marks_seen;
        }
    }
    // Victim's ToR downlink port 0 queue (ToR 0, port 0).
    let st = sim.net.borrow().switch_stats(0);
    let drops: u64 = (0..sim.net.borrow().num_switches())
        .map(|s| {
            sim.net
                .borrow()
                .switch_stats(s)
                .port_drops
                .iter()
                .sum::<u64>()
        })
        .sum();
    IncastResult {
        total_goodput_bps: (rx1 - rx0) as f64 * 8.0 / secs,
        rtt,
        victim_port_max_queue: st.port_max_queue_bytes[0],
        switch_drops: drops,
        ecn_marks_seen,
        background: if background {
            Some(bg_hist.borrow().clone())
        } else {
            None
        },
    }
}

pub fn run() -> String {
    let mut degrees = vec![20usize, 50];
    if crate::bench_full() {
        degrees.push(100 - 2); // 98-way: nodes 1..=98 (99 hosts minus victim & bg)
    }
    let mut t = Table::new(
        "Table 5: incast — congestion control effectiveness (CX4, 8 MB flows)",
        &[
            "incast",
            "cc",
            "total bw",
            "RTT p50",
            "RTT p99",
            "victim queue (max)",
            "switch drops",
        ],
    );
    let paper: &[(&str, &str, &str, &str)] = &[
        ("20", "on", "21.8 Gbps", "39/67 µs"),
        ("20", "off", "23.1 Gbps", "202/204 µs"),
        ("50", "on", "18.4 Gbps", "34/174 µs"),
        ("50", "off", "23.0 Gbps", "524/524 µs"),
        ("98", "on", "22.8 Gbps", "349/969 µs"),
        ("98", "off", "23.0 Gbps", "1056/1060 µs"),
    ];
    let mut pi = 0;
    for &m in &degrees {
        for &cc in &[true, false] {
            let r = run_incast(m, cc, false, 10_000_000);
            t.row(&[
                m.to_string(),
                if cc { "on".into() } else { "off".to_string() },
                format!("{:.1} Gbps", r.total_goodput_bps / 1e9),
                us(r.rtt.percentile(50.0)),
                us(r.rtt.percentile(99.0)),
                format!("{} kB", r.victim_port_max_queue / 1000),
                r.switch_drops.to_string(),
            ]);
            pi += 1;
        }
    }
    let _ = pi;
    for (m, cc, bw, rtts) in paper {
        t.note(format!("paper {m}-way cc={cc}: {bw}, RTT p50/p99 = {rtts}"));
    }
    // §6.5: background traffic during incast.
    let bg = run_incast(degrees[degrees.len() - 1], true, true, 10_000_000);
    if let Some(h) = bg.background {
        t.note(format!(
            "§6.5 background 64 kB RPCs during {}-way incast (cc on): p99 = {} (paper: ≈274 µs at 100-way)",
            degrees[degrees.len() - 1],
            us(h.percentile(99.0)),
        ));
    }
    t.note("shape to hold: cc cuts p50 queueing ≥3–5×; without cc RTT ≈ M × C × MTU / 25 Gbps; zero drops either way (buffer ≫ BDP)");
    t.print();
    t.render()
}
