//! One module per paper table/figure. Each exposes `run() -> String`
//! (the rendered table, also printed) so bench targets stay one-liners
//! and integration tests can smoke-run scaled-down versions.

pub mod ext_dcqcn_ablation;
pub mod fig1_rdma_scalability;
pub mod fig4_small_rpc_rate;
pub mod fig5_scalability;
pub mod fig6_large_rpc_bw;
pub mod nic_footprint;
pub mod sec72_masstree;
pub mod tab2_small_rpc_latency;
pub mod tab3_factor_analysis;
pub mod tab4_loss_tolerance;
pub mod tab5_incast;
pub mod tab6_raft_replication;
pub mod transport_ablation;
