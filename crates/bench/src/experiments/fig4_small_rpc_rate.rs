//! **Figure 4** — Single-core small-RPC rate with B requests per batch
//! (§6.2).
//!
//! Paper: symmetric workload (every thread is client + server, 60 RPCs in
//! flight, 32 B messages); eRPC reaches ≈5 Mrps per thread at B = 3 on
//! CX4 and stays within 18 % of FaSST — a specialized RPC that handles no
//! losses, no congestion, no large messages — across B ∈ {3, 5, 11}.
//!
//! Mode: wall-clock, one core. The FaSST baseline is eRPC stripped to the
//! FaSST feature set (no congestion control, no liveness machinery): the
//! gap between the columns is the measured *cost of generality*.

use crate::table::{mrps, Table};
use crate::thread_cluster::{run_symmetric, SymmetricOpts};
use erpc::RpcConfig;

/// Timely tuned to the in-process fabric: thresholds scale with the
/// fabric's RTT (the paper's 50 µs t_low assumes ~6 µs datacenter RTTs;
/// loopback RTTs under a 60-deep window are hundreds of µs). This keeps
/// the *uncongested* common case actually uncongested, as in §6.2.
/// Shared with the other wall-clock `MemFabric` experiments (fig5's
/// real-threads mode).
pub fn wall_clock_timely() -> erpc_congestion::TimelyConfig {
    erpc_congestion::TimelyConfig {
        t_low_ns: 5_000_000,
        t_high_ns: 50_000_000,
        min_rtt_ns: 100_000,
        ..erpc_congestion::TimelyConfig::for_link(25e9)
    }
}

fn cfg_full() -> RpcConfig {
    RpcConfig {
        ping_interval_ns: 0,
        cc: erpc::CcAlgorithm::Timely(wall_clock_timely()),
        ..RpcConfig::default()
    }
}

fn cfg_fasst() -> RpcConfig {
    RpcConfig::fasst_like()
}

pub fn run() -> String {
    let endpoints = 4;
    let measure_ms = crate::bench_millis();
    let mut t = Table::new(
        format!("Figure 4: per-core small-RPC rate ({endpoints} endpoints on one core, 32 B, window 60)"),
        &["B", "eRPC", "FaSST-like", "eRPC/FaSST", "paper (CX4 eRPC)"],
    );
    let paper = ["5.0 Mrps", "4.9 Mrps", "4.8 Mrps"];
    // Pool behavior across all runs (satellite of the allocation-free
    // datapath: misses must stay O(warmup), not O(RPCs)).
    let mut pool_new = 0u64;
    let mut pool_reused = 0u64;
    let mut total_rpcs = 0u64;
    // Fast-path hit rate across all runs (satellite of the §5.2
    // common-case dispatch: in this workload virtually every packet is an
    // in-order single-packet request or response).
    let mut fast_hits = 0u64;
    let mut slow_entries = 0u64;
    let mut rto_events = 0u64;
    let mut retransmissions = 0u64;
    let mut incarnation_resets = 0u64;
    // Best-of-2 per cell: tames shared-core scheduler noise.
    let mut best = |cfg: &RpcConfig, batch: usize| -> f64 {
        (0..2)
            .map(|_| {
                let r = run_symmetric(SymmetricOpts {
                    endpoints,
                    batch,
                    measure_ms,
                    rpc_cfg: cfg.clone(),
                    ..Default::default()
                });
                pool_new += r.stats.pool_allocs_new;
                pool_reused += r.stats.pool_allocs_reused;
                total_rpcs += r.total_completed;
                fast_hits += r.stats.fast_path_hits;
                slow_entries += r.stats.slow_path_entries;
                rto_events += r.stats.rto_events;
                retransmissions += r.stats.retransmissions;
                incarnation_resets += r.stats.sessions_reset_incarnation;
                r.per_core_rate
            })
            .fold(0.0, f64::max)
    };
    for (i, &batch) in [3usize, 5, 11].iter().enumerate() {
        let erpc = best(&cfg_full(), batch);
        let fasst = best(&cfg_fasst(), batch);
        t.row(&[
            batch.to_string(),
            mrps(erpc),
            mrps(fasst),
            format!("{:.0} %", erpc / fasst * 100.0),
            paper[i].to_string(),
        ]);
    }
    t.note("paper: eRPC within 18 % of FaSST at all batch sizes (≥82 %); 5.0 Mrps/thread at B=3 on CX4");
    t.note(format!(
        "msgbuf pool: {pool_new} misses / {pool_reused} hits across all runs ({:.4} misses per measured RPC) — steady state allocates nothing",
        pool_new as f64 / total_rpcs.max(1) as f64
    ));
    t.note("each thread also *serves* its peers, so it processes ≈2× its request rate in RPCs/s");
    let hit_rate = fast_hits as f64 / (fast_hits + slow_entries).max(1) as f64;
    t.note(format!(
        "common-case fast path: {:.2} % of packets ({fast_hits} hits / {slow_entries} slow-path entries)",
        hit_rate * 100.0
    ));
    // Robustness counters: the fabric is lossless here, so any nonzero
    // RTO/retransmit activity flags a timer or estimator bug rather than
    // real loss (the lossy story is gated in the chaos_smoke target).
    t.note(format!(
        "robustness: {rto_events} RTO events, {retransmissions} retransmits, {incarnation_resets} incarnation resets (expect 0/0/0 on a lossless fabric)"
    ));
    // Smoke gate: this workload is all in-order single-packet RPCs on
    // healthy sessions, so almost nothing may fall off the fast path
    // (only the connect handshakes and CRs-free control traffic do).
    assert!(
        hit_rate >= 0.99,
        "fast-path hit rate regressed: {:.4} < 0.99",
        hit_rate
    );
    t.print();
    t.render()
}
