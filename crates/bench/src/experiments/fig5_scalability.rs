//! **Figure 5 / §6.3** — Scalability: latency percentiles and per-node
//! rate as threads/node grow on the 100-node CX4 cluster.
//!
//! Paper: with T threads/node each node hosts T×(100T−1) client sessions
//! (19 980 at T=10); every thread keeps 60 32 B RPCs in flight to random
//! peers. Median latency 12.7 µs at T=1 (cross-switch + deep pipelines);
//! p99.99 < 700 µs at T=10; 12.3 Mrps/node at T=10.
//!
//! Modes:
//!
//! * **virtual time** (the only way to host thousands of sessions on one
//!   machine): the default run scales the cluster down (20 nodes, T ∈
//!   {1, 2}); `ERPC_BENCH_FULL=1` runs 100 nodes with T ∈ {1, 2}
//!   (memory-bound: 2 M sessions of the true T=10 setup needs a real
//!   cluster).
//! * **real OS threads** ([`run_scale_threads`]): T endpoints on T
//!   threads from one `Nexus` over `MemFabric` — the paper's actual
//!   execution shape at single-node scale. Per-thread `RpcStats` and
//!   latency histograms are merged (`RpcStats::merge`) into aggregate
//!   Mrps and cross-thread percentiles, with a per-thread breakdown so
//!   scaling efficiency (T=4 vs T=1) lands in the recorded table output.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use erpc::{LatencyHistogram, MsgBuf, RpcConfig, SessionHandle};
use erpc_sim::{Cluster, Topology};
use erpc_transport::Addr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::multi_thread_cluster::{run_symmetric_threads, ThreadedOpts, ThreadedResult};
use crate::sim_harness::SimCluster;
use crate::table::{us, Table};

const ECHO: u8 = 1;

pub struct ScaleResult {
    pub per_node_rate: f64,
    pub latency: LatencyHistogram,
    pub retransmissions: u64,
}

/// Run the symmetric workload on `nodes`×`threads_per_node` endpoints for
/// `measure_ns` of virtual time.
pub fn run_scale(nodes: usize, threads_per_node: usize, measure_ns: u64) -> ScaleResult {
    let mut cfg = Cluster::Cx4.config();
    let tors = 5.min(nodes);
    cfg.topology = Topology::TwoTier {
        tors,
        hosts_per_tor: nodes / tors,
        spines: 1,
    };
    let n_endpoints = nodes * threads_per_node;
    // Size |RQ| for the session count (modern NICs support very large RQs;
    // §4.3.1 / App. A).
    cfg.host_ring_capacity = (n_endpoints * 2 * 32).next_power_of_two().max(4096);
    let mut sim = SimCluster::new(cfg);
    let cpu = Cluster::Cx4.cpu_model();
    let rpc_cfg = RpcConfig {
        ping_interval_ns: 0,
        ..RpcConfig::default()
    };

    let hist = Rc::new(RefCell::new(LatencyHistogram::new()));
    let completions = Rc::new(Cell::new(0u64));
    let measuring = Rc::new(Cell::new(false));

    // Addresses: node n, endpoint t.
    let addr_of = |i: usize| Addr::new((i / threads_per_node) as u16, (i % threads_per_node) as u8);

    // Session lists are created after all endpoints exist; the app
    // closures see them through these shared cells.
    let mut session_cells: Vec<Rc<RefCell<Vec<SessionHandle>>>> = Vec::new();

    for i in 0..n_endpoints {
        let outstanding = Rc::new(Cell::new(0usize));
        let freelist: Rc<RefCell<Vec<(MsgBuf, MsgBuf)>>> = Rc::new(RefCell::new(Vec::new()));
        let sessions_cell: Rc<RefCell<Vec<SessionHandle>>> = Rc::new(RefCell::new(Vec::new()));
        let (o2, f2, s2) = (outstanding.clone(), freelist.clone(), sessions_cell.clone());
        let (h0, c0, m0) = (hist.clone(), completions.clone(), measuring.clone());
        let mut rng = SmallRng::seed_from_u64(0xF165 ^ i as u64);
        sim.add_endpoint(
            addr_of(i),
            rpc_cfg.clone(),
            cpu.clone(),
            Box::new(move |rpc, _now| {
                let sessions = s2.borrow();
                if sessions.is_empty() {
                    return;
                }
                // Keep 60 in flight, issued in batches of 3 (B=3).
                while o2.get() + 3 <= 60 {
                    for _ in 0..3 {
                        let (mut req, resp) = f2
                            .borrow_mut()
                            .pop()
                            .unwrap_or((rpc.alloc_msg_buffer(32), rpc.alloc_msg_buffer(32)));
                        req.resize(32);
                        let sess = sessions[rng.gen_range(0..sessions.len())];
                        let (h2, c2, m2, o3, f3) =
                            (h0.clone(), c0.clone(), m0.clone(), o2.clone(), f2.clone());
                        let cont =
                            move |_ctx: &mut erpc::ContContext<'_>, comp: erpc::Completion| {
                                assert!(comp.result.is_ok());
                                o3.set(o3.get() - 1);
                                if m2.get() {
                                    c2.set(c2.get() + 1);
                                    h2.borrow_mut().record(comp.latency_ns);
                                }
                                f3.borrow_mut().push((comp.req, comp.resp));
                            };
                        match rpc.enqueue_request(sess, ECHO, req, resp, cont) {
                            Ok(()) => o2.set(o2.get() + 1),
                            Err(e) => {
                                f2.borrow_mut().push((e.req, e.resp));
                                return;
                            }
                        }
                    }
                }
            }),
        );
        sim.endpoints[i]
            .rpc
            .register_request_handler(ECHO, Box::new(|ctx, _req| ctx.respond(&[0u8; 32])));
        session_cells.push(sessions_cell);
    }

    // Create full-mesh client sessions.
    let mut to_connect = Vec::new();
    for (i, cell) in session_cells.iter().enumerate() {
        let mut sessions = Vec::with_capacity(n_endpoints - 1);
        for j in 0..n_endpoints {
            if i == j {
                continue;
            }
            let s = sim.endpoints[i]
                .rpc
                .create_session(addr_of(j))
                .expect("session");
            sessions.push(s);
            to_connect.push((i, s));
        }
        *cell.borrow_mut() = sessions;
    }
    sim.run_until_connected(&to_connect, 30_000_000_000);

    // Warmup (pipelines fill), then measure.
    let warm = sim.now_ns() + measure_ns / 4;
    sim.run(warm);
    measuring.set(true);
    let t0 = sim.now_ns();
    sim.run(t0 + measure_ns);
    measuring.set(false);
    let secs = (sim.now_ns() - t0) as f64 / 1e9;

    let retx: u64 = sim
        .endpoints
        .iter()
        .map(|e| e.rpc.stats().retransmissions)
        .sum();
    let latency = hist.borrow().clone();
    ScaleResult {
        per_node_rate: completions.get() as f64 / secs / nodes as f64,
        latency,
        retransmissions: retx,
    }
}

/// Run the symmetric workload on `threads` real OS threads (one `Rpc`
/// each, from one `Nexus`) for `measure_ms` of wall time.
pub fn run_scale_threads(threads: usize, measure_ms: u64) -> ThreadedResult {
    run_symmetric_threads(ThreadedOpts {
        threads,
        measure_ms,
        warmup_ms: (measure_ms / 4).max(20),
        rpc_cfg: RpcConfig {
            ping_interval_ns: 0,
            cc: erpc::CcAlgorithm::Timely(super::fig4_small_rpc_rate::wall_clock_timely()),
            ..RpcConfig::default()
        },
        ..ThreadedOpts::default()
    })
}

/// The real-threads table: aggregate Mrps at each T with the per-thread
/// breakdown and cross-thread latency percentiles.
pub fn run_threads() -> String {
    let thread_counts = [1usize, 2, 4];
    let measure_ms = crate::bench_millis();
    let cores = crate::host_cores();
    let mut t = Table::new(
        format!(
            "Figure 5 (real threads): aggregate rate, T Rpc endpoints on T OS threads \
             ({cores}-core host, 32 B, window 60)"
        ),
        &[
            "threads",
            "Mrps total",
            "per-thread Mrps",
            "p50",
            "p99",
            "p99.9",
        ],
    );
    let mut aggregates = Vec::new();
    for &tp in &thread_counts {
        let r = run_scale_threads(tp, measure_ms);
        let per: Vec<String> = r
            .per_thread
            .iter()
            .map(|s| format!("{:.2}", s.rate / 1e6))
            .collect();
        let l = &r.latency;
        t.row(&[
            tp.to_string(),
            format!("{:.2}", r.aggregate_rate / 1e6),
            per.join(" "),
            us(l.percentile(50.0)),
            us(l.percentile(99.0)),
            us(l.percentile(99.9)),
        ]);
        aggregates.push((tp, r.aggregate_rate));
    }
    // The breakdown line bench JSON trajectories key on: scaling
    // efficiency of the aggregate rate, T = max vs T = 1.
    if let (Some(&(t1, r1)), Some(&(tmax, rmax))) = (aggregates.first(), aggregates.last()) {
        t.note(format!(
            "scaling: T={tmax} aggregate {:.2} Mrps vs T={t1} {:.2} Mrps = {:.2}x (ideal {:.0}x)",
            rmax / 1e6,
            r1 / 1e6,
            rmax / r1.max(1.0),
            tmax as f64 / t1 as f64,
        ));
    }
    if cores < 4 {
        t.note(format!(
            "CAVEAT: {cores} core(s) available — T threads time-share, so aggregate \
             scaling is bounded by the host, not the runtime"
        ));
    }
    t.note(
        "T=1 runs against a loopback self-session (same client+server work per core as the mesh)",
    );
    t.print();
    t.render()
}

pub fn run() -> String {
    let (nodes, threads, measure_ns) = if crate::bench_full() {
        (100, vec![1usize, 2], 4_000_000u64)
    } else {
        (20, vec![1usize, 2], 4_000_000u64)
    };
    let mut t = Table::new(
        format!("Figure 5 / §6.3: scalability on {nodes} simulated CX4 nodes (32 B, window 60)"),
        &[
            "threads/node",
            "sessions/node",
            "Mrps/node",
            "p50",
            "p99",
            "p99.9",
            "p99.99",
        ],
    );
    for &tp in &threads {
        let r = run_scale(nodes, tp, measure_ns);
        let l = &r.latency;
        t.row(&[
            tp.to_string(),
            (tp * (nodes * tp - 1) * 2).to_string(),
            format!("{:.1}", r.per_node_rate / 1e6),
            us(l.percentile(50.0)),
            us(l.percentile(99.0)),
            us(l.percentile(99.9)),
            us(l.percentile(99.99)),
        ]);
    }
    t.note(
        "paper (100 nodes): p50 12.7 µs at T=1; p99.99 < 700 µs at T=10; 12.3 Mrps/node at T=10",
    );
    t.note("paper observed steady retransmissions (< 1700 pkt/s/node) at T ≥ 2 — lossy fabric, not lossless");
    t.print();
    let virtual_table = t.render();
    let threads_table = run_threads();
    format!("{virtual_table}{threads_table}")
}
