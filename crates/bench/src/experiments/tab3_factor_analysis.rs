//! **Table 3** — Factor analysis: impact of disabling the common-case
//! optimizations on small-RPC rate (§6.2).
//!
//! Paper (CX4, B = 3, cumulative disabling):
//!
//! | action                              | rate      | loss  |
//! |-------------------------------------|-----------|-------|
//! | baseline (with congestion control)  | 4.96 M/s  | –     |
//! | − batched RTT timestamps            | 4.84 M/s  | 2.4 % |
//! | − Timely bypass                     | 4.52 M/s  | 6.6 % |
//! | − rate limiter bypass               | 4.30 M/s  | 4.8 % |
//! | − multi-packet RQ                   | 4.06 M/s  | 5.6 % |
//! | − preallocated responses            | 3.55 M/s  | 12.6 %|
//! | − 0-copy request processing         | 3.05 M/s  | 14.0 %|
//!
//! Plus §6.2's headline: disabling congestion control entirely lifts the
//! baseline 4.96 → 5.44 Mrps (9 % total overhead).
//!
//! Our table adds one factor the paper names in §4.3 but does not ablate
//! in Table 3: **transmit batching** (`opt_tx_batching`) — the deferred TX
//! queue that coalesces every packet queued in an event-loop pass into one
//! `tx_burst` doorbell. Disabling it reverts to one burst per packet. It
//! is reported as a *standalone* ablation against the baseline (last row),
//! not folded into the cumulative ladder, so the paper rows stay measured
//! under the paper's own configuration.
//!
//! Mode: wall-clock threads; each flag removes/adds *real* work (clock
//! reads, FP updates, pacing-wheel traffic, descriptor writes, allocator
//! calls, memcpys).

use crate::table::{mrps, Table};
use crate::thread_cluster::{run_symmetric, SymmetricOpts};
use erpc::{CcAlgorithm, RpcConfig};

/// Timely tuned to the in-process fabric: thresholds scale with the
/// fabric's RTT (the paper's 50 µs t_low assumes ~6 µs datacenter RTTs;
/// loopback RTTs under a 60-deep window are hundreds of µs). This keeps
/// the *uncongested* common case actually uncongested, as in §6.2.
fn wall_clock_timely() -> erpc_congestion::TimelyConfig {
    erpc_congestion::TimelyConfig {
        t_low_ns: 5_000_000,
        t_high_ns: 50_000_000,
        min_rtt_ns: 100_000,
        ..erpc_congestion::TimelyConfig::for_link(25e9)
    }
}

fn base_cfg() -> RpcConfig {
    RpcConfig {
        ping_interval_ns: 0,
        cc: erpc::CcAlgorithm::Timely(wall_clock_timely()),
        ..RpcConfig::default()
    }
}

pub fn run() -> String {
    let endpoints = 4;
    let measure_ms = crate::bench_millis();
    // Best-of-3: on a shared core, scheduler noise dwarfs the smaller
    // effects; the best run is the least-perturbed one.
    let measure = |cfg: RpcConfig| -> f64 {
        (0..3)
            .map(|_| {
                run_symmetric(SymmetricOpts {
                    endpoints,
                    batch: 3,
                    measure_ms,
                    rpc_cfg: cfg.clone(),
                    ..Default::default()
                })
                .per_core_rate
            })
            .fold(0.0, f64::max)
    };
    // Throwaway run: page in code paths, warm the allocator.
    let _ = run_symmetric(SymmetricOpts {
        endpoints,
        batch: 3,
        measure_ms: 100,
        rpc_cfg: base_cfg(),
        ..Default::default()
    });

    // Cumulative ladder, same order as the paper.
    let mut cfg = base_cfg();
    let mut rows: Vec<(&str, f64)> = Vec::new();
    rows.push(("baseline (with congestion control)", measure(cfg.clone())));
    cfg.opt_batched_timestamps = false;
    rows.push(("disable batched RTT timestamps", measure(cfg.clone())));
    cfg.opt_timely_bypass = false;
    rows.push(("disable Timely bypass", measure(cfg.clone())));
    cfg.opt_rate_limiter_bypass = false;
    rows.push(("disable rate limiter bypass", measure(cfg.clone())));
    cfg.opt_multi_packet_rq = false;
    rows.push(("disable multi-packet RQ", measure(cfg.clone())));
    cfg.opt_preallocated_responses = false;
    rows.push(("disable preallocated responses", measure(cfg.clone())));
    cfg.opt_zero_copy_rx = false;
    rows.push(("disable 0-copy request processing", measure(cfg.clone())));

    let no_cc = measure(RpcConfig {
        cc: CcAlgorithm::None,
        ..base_cfg()
    });
    // Our transmit-batching factor, ablated ALONE against the baseline
    // (not cumulatively): the paper's Table 3 never disables TX batching,
    // so folding it into the ladder would measure every paper row under a
    // configuration the paper numbers were not taken in.
    let tx_batching_off = measure(RpcConfig {
        opt_tx_batching: false,
        ..base_cfg()
    });
    // Header templates + zero-decode RX + fast-path dispatch (§5.2's
    // common-case packet path), also ablated alone against the baseline:
    // like transmit batching, the paper's Table 3 has no such row.
    let hdr_template_off = measure(RpcConfig {
        opt_hdr_template: false,
        ..base_cfg()
    });
    // Adaptive RTO (robustness PR), ablated alone: with no injected loss
    // the estimator never fires, so this row prices the bookkeeping —
    // one SRTT/RTTVAR fold per Karn-valid ack — which should be ~free.
    // Its latency win under loss is gated in the chaos_smoke target.
    let adaptive_rto_off = measure(RpcConfig {
        opt_adaptive_rto: false,
        ..base_cfg()
    });

    let mut t = Table::new(
        format!(
            "Table 3: factor analysis, cumulative ({endpoints} endpoints on one core, B=3, 32 B)"
        ),
        &[
            "action",
            "RPC rate",
            "step loss",
            "paper rate",
            "paper loss",
        ],
    );
    let paper = [
        ("4.96 M/s", "–"),
        ("4.84 M/s", "2.4 %"),
        ("4.52 M/s", "6.6 %"),
        ("4.30 M/s", "4.8 %"),
        ("4.06 M/s", "5.6 %"),
        ("3.55 M/s", "12.6 %"),
        ("3.05 M/s", "14.0 %"),
    ];
    let mut prev = rows[0].1;
    for (i, (name, rate)) in rows.iter().enumerate() {
        let loss = if i == 0 {
            "–".to_string()
        } else {
            format!("{:.1} %", (prev - rate) / prev * 100.0)
        };
        t.row(&[
            name.to_string(),
            mrps(*rate),
            loss,
            paper[i].0.to_string(),
            paper[i].1.to_string(),
        ]);
        prev = *rate;
    }
    let base = rows[0].1;
    let bottom = rows.last().unwrap().1;
    // Standalone (non-cumulative) factor: loss is relative to the baseline.
    t.row(&[
        "disable transmit batching (alone)".to_string(),
        mrps(tx_batching_off),
        format!("{:.1} %", (base - tx_batching_off) / base * 100.0),
        "–".to_string(),
        "–".to_string(),
    ]);
    t.row(&[
        "disable header templates + fast path (alone)".to_string(),
        mrps(hdr_template_off),
        format!("{:.1} %", (base - hdr_template_off) / base * 100.0),
        "–".to_string(),
        "–".to_string(),
    ]);
    t.row(&[
        "disable adaptive RTO (alone)".to_string(),
        mrps(adaptive_rto_off),
        format!("{:.1} %", (base - adaptive_rto_off) / base * 100.0),
        "–".to_string(),
        "–".to_string(),
    ]);
    t.note(format!(
        "congestion control off: {} (+{:.0} % over baseline; paper: 5.44 M/s, +9 %)",
        mrps(no_cc),
        (no_cc - base) / base * 100.0
    ));
    t.note(format!(
        "all optimizations off: {:.0} % of baseline (paper: ≈60 %)",
        bottom / base * 100.0
    ));
    t.note("shape to hold: every step loses throughput; prealloc + 0-copy are the biggest steps");
    t.print();
    t.render()
}
