//! Minimal aligned-column table printer for paper-style output.

/// A table under construction.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Render to stdout.
    pub fn print(&self) {
        // lint:allow(no-print): rendering paper tables to stdout is this
        // type's documented job; the datapath never calls it.
        print!("{}", self.render());
    }
}

/// Format helpers.
pub fn us(ns: u64) -> String {
    format!("{:.1} µs", ns as f64 / 1e3)
}

pub fn gbps(bits_per_sec: f64) -> String {
    format!("{:.1} Gbps", bits_per_sec / 1e9)
}

pub fn mrps(rate: f64) -> String {
    format!("{:.2} Mrps", rate / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "bbbb", "c"]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        t.row(&["xxx".into(), "y".into(), "zz".into()]);
        t.note("hello");
        let r = t.render();
        assert!(r.contains("== T =="));
        assert!(r.contains("xxx  y     zz"));
        assert!(r.contains("note: hello"));
    }

    #[test]
    fn formatters() {
        assert_eq!(us(2_300), "2.3 µs");
        assert_eq!(gbps(75.2e9), "75.2 Gbps");
        assert_eq!(mrps(4_960_000.0), "4.96 Mrps");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1".into()]);
    }
}
