//! Real-OS-thread harness: T `Rpc` endpoints on T threads, all created
//! from one [`Nexus`] over a shared [`MemFabric`] — the paper's §3
//! threading model made literal, and the wall-clock counterpart of the
//! single-thread [`crate::thread_cluster`] harness.
//!
//! Each thread owns its `Rpc` exclusively (created *on* the thread; the
//! datapath shares nothing), runs the §6.2 symmetric workload — every
//! thread is client and server, keeping `window` small RPCs in flight to
//! uniformly random peers — and reports its own completion count, latency
//! histogram, and [`RpcStats`]. The harness merges them with
//! [`RpcStats::merge`] / `LatencyHistogram::merge`, so aggregate Mrps and
//! cross-thread latency percentiles come from one histogram, the way
//! Figure 5 reports per-node numbers as the sum over that node's threads.
//!
//! With `threads == 1` the single endpoint runs the workload against a
//! loopback session to itself (it still performs both the client and the
//! server half of every RPC on its core, like every thread in the T ≥ 2
//! all-to-all mesh), so T = 1 is a comparable per-thread baseline.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use erpc::{LatencyHistogram, MsgBuf, Nexus, NexusConfig, RpcConfig, RpcStats};
use erpc_transport::{MemFabric, MemFabricConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ECHO: u8 = 1;

/// Options for the real-threads symmetric workload.
#[derive(Clone)]
pub struct ThreadedOpts {
    /// OS threads = `Rpc` endpoints (Figure 5's T).
    pub threads: usize,
    /// Requests issued per batch (Figure 4's B).
    pub batch: usize,
    pub req_size: usize,
    pub resp_size: usize,
    /// Target in-flight requests per thread (paper: 60).
    pub window: usize,
    pub warmup_ms: u64,
    pub measure_ms: u64,
    pub rpc_cfg: RpcConfig,
    pub fabric_cfg: MemFabricConfig,
}

impl Default for ThreadedOpts {
    fn default() -> Self {
        Self {
            threads: 2,
            batch: 3,
            req_size: 32,
            resp_size: 32,
            window: 60,
            warmup_ms: 100,
            measure_ms: 500,
            rpc_cfg: RpcConfig {
                ping_interval_ns: 0,
                ..RpcConfig::default()
            },
            fabric_cfg: MemFabricConfig::default(),
        }
    }
}

/// One thread's share of a [`ThreadedResult`].
pub struct ThreadShare {
    pub thread_id: u8,
    /// RPCs this thread completed during the measure window.
    pub completed: u64,
    /// This thread's completion rate (RPCs/s).
    pub rate: f64,
    /// This thread's endpoint counters.
    pub stats: RpcStats,
}

/// Result of a real-threads run.
pub struct ThreadedResult {
    /// RPCs/s summed over all threads (Figure 5's per-node rate).
    pub aggregate_rate: f64,
    pub total_completed: u64,
    /// Completion latencies merged across threads (measure window only),
    /// so percentiles are cross-thread.
    pub latency: LatencyHistogram,
    /// Endpoint counters merged across threads via [`RpcStats::merge`].
    pub stats: RpcStats,
    /// Per-thread breakdown (scaling-efficiency diagnostics).
    pub per_thread: Vec<ThreadShare>,
}

/// Run the symmetric workload on `opts.threads` real OS threads.
pub fn run_symmetric_threads(opts: ThreadedOpts) -> ThreadedResult {
    // Thread ids are u8 endpoint addresses: 255 is the hard ceiling (256
    // would truncate to id 0 and spawn nothing).
    assert!(opts.threads >= 1 && opts.threads <= u8::MAX as usize);
    let nexus = Arc::new(Nexus::new(
        MemFabric::new(opts.fabric_cfg.clone()),
        0,
        NexusConfig::default(),
    ));
    let measuring = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    // Rendezvous *counters*, not barriers: a thread that reached a phase
    // keeps polling its event loop until every thread has — blocking at a
    // barrier would stop it serving peers' handshakes/responses and
    // deadlock the mesh (every endpoint is also a server).
    let ready = Arc::new(AtomicUsize::new(0));
    let drained = Arc::new(AtomicUsize::new(0));

    let mut handles = Vec::with_capacity(opts.threads);
    for t in 0..opts.threads as u8 {
        let nexus = Arc::clone(&nexus);
        let opts = opts.clone();
        let measuring = Arc::clone(&measuring);
        let stop = Arc::clone(&stop);
        let ready = Arc::clone(&ready);
        let drained = Arc::clone(&drained);
        handles.push(
            std::thread::Builder::new()
                .name(format!("erpc-fig5-{t}"))
                .spawn(move || thread_body(&nexus, t, &opts, &measuring, &stop, &ready, &drained))
                .expect("spawn harness thread"),
        );
    }

    // Drive the phases by wall clock; threads sample the flags. Bounded:
    // a peer that failed to connect (or panicked before signalling ready)
    // must fail the run loudly, not hang it until the CI job timeout.
    let connect_deadline = Instant::now() + Duration::from_secs(30);
    while ready.load(Ordering::SeqCst) < opts.threads {
        assert!(
            Instant::now() < connect_deadline,
            "mesh did not connect: {}/{} threads ready after 30 s",
            ready.load(Ordering::SeqCst),
            opts.threads
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(opts.warmup_ms));
    measuring.store(true, Ordering::SeqCst);
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_millis(opts.measure_ms));
    measuring.store(false, Ordering::SeqCst);
    let secs = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::SeqCst);

    let mut per_thread = Vec::with_capacity(opts.threads);
    let mut latency = LatencyHistogram::new();
    let mut stats = RpcStats::default();
    let mut total = 0u64;
    for h in handles {
        let (thread_id, completed, hist, st) = h.join().expect("harness thread panicked");
        latency.merge(&hist);
        stats.merge(&st);
        total += completed;
        per_thread.push(ThreadShare {
            thread_id,
            completed,
            rate: completed as f64 / secs,
            stats: st,
        });
    }
    per_thread.sort_by_key(|s| s.thread_id);
    ThreadedResult {
        aggregate_rate: total as f64 / secs,
        total_completed: total,
        latency,
        stats,
        per_thread,
    }
}

#[allow(clippy::too_many_arguments)]
fn thread_body(
    nexus: &Nexus<MemFabric>,
    t: u8,
    opts: &ThreadedOpts,
    measuring: &Arc<AtomicBool>,
    stop: &Arc<AtomicBool>,
    ready: &Arc<AtomicUsize>,
    drained: &Arc<AtomicUsize>,
) -> (u8, u64, LatencyHistogram, RpcStats) {
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    // The Rpc is created on (and never leaves) its owning thread.
    let mut rpc = nexus
        .create_rpc(t, opts.rpc_cfg.clone())
        .expect("unique thread id");
    let resp_size = opts.resp_size;
    rpc.register_request_handler(
        ECHO,
        Box::new(move |ctx, _req| {
            let resp = [0x5Au8; 4096];
            ctx.respond(&resp[..resp_size]);
        }),
    );

    // Peers: every other thread; with T = 1, a loopback session to self.
    let peers: Vec<u8> = if opts.threads == 1 {
        vec![t]
    } else {
        (0..opts.threads as u8).filter(|&p| p != t).collect()
    };
    let sessions: Vec<erpc::SessionHandle> = peers
        .iter()
        .map(|&p| rpc.create_session(nexus.addr_of(p)).expect("session"))
        .collect();
    // Poll-and-yield: when a pass receives nothing, hand the core to
    // whichever peer we are waiting on. On hosts with cores ≥ threads the
    // yield almost never fires (there is always RX work); on oversubscribed
    // hosts it turns scheduler-quantum stalls (tens of ms per round trip)
    // into cooperative rotation. Mirrors eRPC's guidance that dispatch
    // threads busy-poll *dedicated* cores — yielding is the graceful
    // degradation when cores are shared.
    let poll = |rpc: &mut erpc::Rpc<_>| {
        let rx_before = rpc.stats().pkts_rx;
        rpc.run_event_loop_once();
        if rpc.stats().pkts_rx == rx_before {
            std::thread::yield_now();
        }
    };
    // Bounded, and alert on failure: a session the management layer gave
    // up on (peer's endpoint never appeared within failure_timeout_ns)
    // stays Failed forever — spinning on is_connected would hang the run.
    let connect_deadline = Instant::now() + Duration::from_secs(25);
    while !sessions.iter().all(|&s| rpc.is_connected(s)) {
        poll(&mut rpc);
        for &s in &sessions {
            assert_ne!(
                rpc.session_state(s),
                Some(erpc::SessionState::Failed),
                "thread {t}: session to a peer failed during connect"
            );
        }
        assert!(
            Instant::now() < connect_deadline,
            "thread {t}: mesh sessions not connected after 25 s"
        );
    }
    // Own client sessions are up; keep polling (serving peers' handshakes)
    // in the main loop below while the rest of the mesh finishes.
    ready.fetch_add(1, Ordering::SeqCst);

    let outstanding = Rc::new(Cell::new(0usize));
    let completed = Rc::new(Cell::new(0u64));
    let hist = Rc::new(RefCell::new(LatencyHistogram::new()));
    let freelist: Rc<RefCell<Vec<(MsgBuf, MsgBuf)>>> = Rc::new(RefCell::new(Vec::new()));
    let mut rng = SmallRng::seed_from_u64(0xF165_0000 ^ t as u64);

    while !stop.load(Ordering::Relaxed) {
        while outstanding.get() + opts.batch <= opts.window {
            let mut enqueue_failed = false;
            for _ in 0..opts.batch {
                let (mut req, resp) = freelist.borrow_mut().pop().unwrap_or((
                    rpc.alloc_msg_buffer(opts.req_size),
                    rpc.alloc_msg_buffer(opts.resp_size.max(1)),
                ));
                req.resize(opts.req_size);
                let sess = sessions[rng.gen_range(0..sessions.len())];
                let (o, c, h, fl) = (
                    outstanding.clone(),
                    completed.clone(),
                    hist.clone(),
                    freelist.clone(),
                );
                let m = Arc::clone(measuring);
                let cont = move |_ctx: &mut erpc::ContContext<'_>, comp: erpc::Completion| {
                    assert!(comp.result.is_ok(), "rpc failed: {:?}", comp.result);
                    o.set(o.get() - 1);
                    if m.load(Ordering::Relaxed) {
                        c.set(c.get() + 1);
                        h.borrow_mut().record(comp.latency_ns);
                    }
                    fl.borrow_mut().push((comp.req, comp.resp));
                };
                match rpc.enqueue_request(sess, ECHO, req, resp, cont) {
                    Ok(()) => outstanding.set(outstanding.get() + 1),
                    Err(e) => {
                        freelist.borrow_mut().push((e.req, e.resp));
                        enqueue_failed = true;
                        break;
                    }
                }
            }
            if enqueue_failed {
                break;
            }
        }
        poll(&mut rpc);
    }

    // Drain in-flight requests so every continuation fires before the
    // endpoint goes away; bounded so a wedged peer cannot hang the run.
    let deadline = Instant::now() + Duration::from_secs(5);
    while outstanding.get() > 0 && Instant::now() < deadline {
        poll(&mut rpc);
    }
    assert_eq!(
        outstanding.get(),
        0,
        "thread {t}: in-flight RPCs not drained"
    );
    // Keep serving peers (their drains need our responses) until everyone
    // has drained; only then may endpoints deregister.
    drained.fetch_add(1, Ordering::SeqCst);
    while drained.load(Ordering::SeqCst) < opts.threads && Instant::now() < deadline {
        poll(&mut rpc);
    }

    let stats = rpc.stats().clone();
    let hist = hist.borrow().clone();
    (t, completed.get(), hist, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_smoke_t2() {
        let r = run_symmetric_threads(ThreadedOpts {
            threads: 2,
            warmup_ms: 20,
            measure_ms: 60,
            ..Default::default()
        });
        assert!(r.total_completed > 100, "completed {}", r.total_completed);
        assert_eq!(r.per_thread.len(), 2);
        assert_eq!(
            r.per_thread.iter().map(|s| s.completed).sum::<u64>(),
            r.total_completed
        );
        assert_eq!(r.latency.count(), r.total_completed);
        // Merged stats really aggregate both endpoints.
        assert!(r.stats.responses_completed >= r.total_completed);
    }

    #[test]
    fn single_thread_loopback_works() {
        let r = run_symmetric_threads(ThreadedOpts {
            threads: 1,
            warmup_ms: 10,
            measure_ms: 40,
            ..Default::default()
        });
        assert!(r.total_completed > 50, "completed {}", r.total_completed);
        assert_eq!(r.per_thread.len(), 1);
    }
}
