//! # erpc-sim
//!
//! A deterministic discrete-event datacenter fabric for the eRPC
//! reproduction's cluster-scale experiments.
//!
//! The paper's headline claims rest on an arithmetic fact about modern
//! datacenters: switch shared buffers (≈12 MB) dwarf the bandwidth-delay
//! product (≈19 kB), so bounding each flow to one BDP of outstanding data
//! prevents buffer-overflow loss (§2.1). Verifying that requires looking
//! *inside* switches — which even the paper can only do indirectly, via
//! RTTs. This simulator makes queues first-class:
//!
//! * [`net::SimNet`] — event-driven links, shared-dynamic-buffer switches
//!   (dynamic-threshold admission), two-tier ECMP topologies, host NIC
//!   RX-descriptor accounting, fault injection, ECN marking.
//! * [`SimTransport`] — plugs eRPC endpoints into the fabric (implements
//!   [`erpc_transport::Transport`] with virtual time).
//! * [`driver`] — interleaves endpoint CPU (costed by [`config::CpuModel`])
//!   with network events, so per-core message rates are bounded as on real
//!   hardware.
//! * [`rdma`] — the RDMA baseline: NIC connection-cache model (Figure 1),
//!   read-latency and write-goodput models (Table 2, Figure 6).
//! * [`nic`] — NIC memory-footprint accounting (Appendix A).
//! * [`config::Cluster`] — the paper's CX3/CX4/CX5 testbeds (Table 1) as
//!   presets.

// This crate needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]
pub mod config;
pub mod driver;
pub mod net;
pub mod nic;
pub mod rdma;
pub mod transport;

pub use config::{Cluster, CpuModel, EcnConfig, FaultConfig, SimConfig, Topology};
pub use driver::{run, run_until, PolledEndpoint};
pub use net::{NetHandle, NetStats, SimNet, SwitchStats};
pub use nic::NicFootprintConfig;
pub use rdma::RdmaNicModel;
pub use transport::SimTransport;
