//! Simulator configuration and the paper's cluster presets (Table 1).

/// ECN marking parameters (RED-style ramp, as configured for DCQCN).
#[derive(Debug, Clone)]
pub struct EcnConfig {
    /// Queue depth where marking begins.
    pub kmin_bytes: usize,
    /// Queue depth where marking probability reaches `pmax`.
    pub kmax_bytes: usize,
    /// Marking probability at `kmax`.
    pub pmax: f64,
    /// Byte offset within the packet payload of the flag octet to set, and
    /// the bit mask to OR in. eRPC reserves an ECN bit in its packet header
    /// (the simulator plays the IP-ECN role by setting it in flight).
    pub flag_byte: usize,
    pub flag_mask: u8,
}

/// Random fault injection, applied per packet with a deterministic seeded
/// RNG (smoltcp-style fault injection: drop / corrupt / reorder).
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Probability a packet is silently dropped in flight.
    pub drop_prob: f64,
    /// Probability a packet is corrupted (receiver CRC-drops it).
    pub corrupt_prob: f64,
    /// Probability a packet is delayed by `reorder_delay_ns`, letting later
    /// packets of the same flow overtake it.
    pub reorder_prob: f64,
    pub reorder_delay_ns: u64,
}

/// Physical topology of the simulated fabric.
#[derive(Debug, Clone)]
pub enum Topology {
    /// All hosts under one switch.
    SingleSwitch { hosts: usize },
    /// Classic two-tier leaf/spine: `tors * hosts_per_tor` hosts. ECMP
    /// hashes flows over the spines. The CX4 cluster is 5 ToRs × 40 hosts
    /// (downlinks) with 5×100 GbE uplinks (2:1 oversubscription) through
    /// one spine layer.
    TwoTier {
        tors: usize,
        hosts_per_tor: usize,
        spines: usize,
    },
}

impl Topology {
    pub fn num_hosts(&self) -> usize {
        match *self {
            Topology::SingleSwitch { hosts } => hosts,
            Topology::TwoTier {
                tors,
                hosts_per_tor,
                ..
            } => tors * hosts_per_tor,
        }
    }

    pub fn num_switches(&self) -> usize {
        match *self {
            Topology::SingleSwitch { .. } => 1,
            Topology::TwoTier { tors, spines, .. } => tors + spines,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub topology: Topology,
    /// Host ⇄ ToR link rate, bits/sec.
    pub link_bps: f64,
    /// ToR ⇄ spine link rate, bits/sec.
    pub uplink_bps: f64,
    /// Per-link propagation delay (one way).
    pub prop_delay_ns: u64,
    /// Per-switch cut-through processing latency (≈300 ns on Spectrum).
    pub switch_latency_ns: u64,
    /// Shared dynamic buffer pool per switch (12 MB on SN2410/Spectrum).
    pub switch_buffer_bytes: usize,
    /// Dynamic-threshold admission factor: a packet is admitted if the
    /// output port's queue is below `dt_alpha × free_pool_bytes`.
    pub dt_alpha: f64,
    /// NIC + PCIe processing per packet on transmit (descriptor fetch, DMA
    /// read, pipeline).
    pub nic_tx_ns: u64,
    /// NIC + PCIe processing per packet on receive (DMA write, CQE).
    pub nic_rx_ns: u64,
    /// RX descriptors per endpoint (models `|RQ|`).
    pub host_ring_capacity: usize,
    /// Wire overhead added to every packet for serialization accounting
    /// (Ethernet + IP + UDP + preamble/IFG ≈ 44 B; 0 looks like InfiniBand
    /// UD with its own ~30 B, close enough to fold into `mtu`).
    pub wire_overhead_bytes: usize,
    /// Max eRPC-layer bytes per packet.
    pub mtu: usize,
    pub ecn: Option<EcnConfig>,
    pub faults: FaultConfig,
    pub seed: u64,
}

impl SimConfig {
    /// BDP of the host link against a same-ToR round trip, in bytes — the
    /// quantity the paper sizes session credits by (§4.3.1).
    pub fn bdp_bytes(&self) -> usize {
        let rtt = self.rtt_ns(false) as f64;
        (self.link_bps * rtt / 8e9) as usize
    }

    /// Baseline RTT estimate: NIC+wire+switch path both ways for a
    /// minimum-size packet, excluding endpoint software.
    pub fn rtt_ns(&self, cross_tor: bool) -> u64 {
        let hops: u64 = if cross_tor { 3 } else { 1 };
        // Links traversed one way = hops + 1.
        let one_way = self.nic_tx_ns
            + (hops + 1) * self.prop_delay_ns
            + hops * self.switch_latency_ns
            + self.nic_rx_ns;
        2 * one_way
    }

    /// Wire + switch RTT only (no NIC/endpoint processing): what an RDMA
    /// NIC would see between its ports. Uses a 60 B packet for
    /// serialization accounting.
    pub fn wire_rtt_ns(&self, cross_tor: bool) -> u64 {
        let hops: u64 = if cross_tor { 3 } else { 1 };
        let ser = (60.0 * 8e9 / self.link_bps) as u64;
        let one_way = (hops + 1) * (self.prop_delay_ns + ser) + hops * self.switch_latency_ns;
        2 * one_way
    }
}

/// The paper's measurement clusters (Table 1), as simulator presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cluster {
    /// 11 nodes, InfiniBand 56 Gbps (ConnectX-3), one switch.
    Cx3,
    /// 100 nodes, lossy Ethernet 25 Gbps (ConnectX-4 Lx), 5 ToRs + spine.
    Cx4,
    /// 8 nodes, lossy Ethernet 40 Gbps (ConnectX-5), one switch. The large-
    /// message experiment re-cables CX5 to 100 Gbps InfiniBand (§6.4).
    Cx5,
    /// CX5 in its 100 Gbps InfiniBand configuration (Figure 6).
    Cx5Ib100,
}

impl Cluster {
    /// Build the preset. Endpoint-software and NIC latency constants are
    /// calibrated so the simulated Table 2 latencies land near the paper's
    /// measurements (see EXPERIMENTS.md).
    pub fn config(self) -> SimConfig {
        match self {
            Cluster::Cx3 => SimConfig {
                topology: Topology::SingleSwitch { hosts: 11 },
                link_bps: 56e9,
                uplink_bps: 56e9,
                prop_delay_ns: 45,
                switch_latency_ns: 100, // SX6036 IB switch, ~100 ns
                switch_buffer_bytes: 9 << 20,
                dt_alpha: 8.0,
                // NIC + endpoint processing per packet (latency only; the
                // CPU model bounds throughput). Calibrated to Table 2.
                nic_tx_ns: 450,
                nic_rx_ns: 450,
                host_ring_capacity: 4096,
                wire_overhead_bytes: 30,
                mtu: 4112, // IB 4096 B MTU: 4096 data + 16 header
                ecn: None,
                faults: FaultConfig::default(),
                seed: 0xC3,
            },
            Cluster::Cx4 => SimConfig {
                topology: Topology::TwoTier {
                    tors: 5,
                    hosts_per_tor: 20,
                    spines: 1,
                },
                link_bps: 25e9,
                uplink_bps: 100e9,
                prop_delay_ns: 75,
                switch_latency_ns: 300, // Spectrum SN2410, <500 ns
                switch_buffer_bytes: 12 << 20,
                dt_alpha: 8.0,
                nic_tx_ns: 700,
                nic_rx_ns: 700,
                host_ring_capacity: 4096,
                wire_overhead_bytes: 44,
                mtu: 1040,
                ecn: None,
                faults: FaultConfig::default(),
                seed: 0xC4,
            },
            Cluster::Cx5 => SimConfig {
                topology: Topology::SingleSwitch { hosts: 8 },
                link_bps: 40e9,
                uplink_bps: 40e9,
                prop_delay_ns: 30,
                switch_latency_ns: 300, // SX1036 adds ~300 ns per L3 packet (§6.1)
                switch_buffer_bytes: 9 << 20,
                dt_alpha: 8.0,
                nic_tx_ns: 380,
                nic_rx_ns: 380,
                host_ring_capacity: 4096,
                wire_overhead_bytes: 44,
                mtu: 1040,
                ecn: None,
                faults: FaultConfig::default(),
                seed: 0xC5,
            },
            Cluster::Cx5Ib100 => SimConfig {
                topology: Topology::SingleSwitch { hosts: 2 },
                link_bps: 100e9,
                uplink_bps: 100e9,
                prop_delay_ns: 30,
                switch_latency_ns: 150,
                switch_buffer_bytes: 9 << 20,
                dt_alpha: 8.0,
                nic_tx_ns: 300,
                nic_rx_ns: 300,
                host_ring_capacity: 8192,
                wire_overhead_bytes: 30,
                mtu: 4112,
                ecn: None,
                faults: FaultConfig::default(),
                seed: 0x5B,
            },
        }
    }

    /// Endpoint software processing cost per packet, nanoseconds — the
    /// paper measures ≈850 ns of end-host networking per side on CX5
    /// (§6.1), which covers NIC *and* software; the software share feeds
    /// the simulator's CPU model.
    pub fn cpu_model(self) -> CpuModel {
        match self {
            Cluster::Cx3 => CpuModel::default_for_rate(4.0e6),
            Cluster::Cx4 => CpuModel::default_for_rate(5.0e6),
            Cluster::Cx5 | Cluster::Cx5Ib100 => CpuModel::default_for_rate(5.5e6),
        }
    }

    /// Per-side RDMA NIC processing latency (generation-dependent:
    /// ConnectX-4 Lx is markedly slower than ConnectX-3/5), calibrated so
    /// the modelled RDMA read latencies land on Table 2's measurements.
    pub fn rdma_nic_side_ns(self) -> u64 {
        match self {
            Cluster::Cx3 => 440,
            Cluster::Cx4 => 760,
            Cluster::Cx5 | Cluster::Cx5Ib100 => 410,
        }
    }

    /// Modelled median latency of a small RDMA read across one switch:
    /// wire RTT + requester/responder NIC processing + the responder-side
    /// PCIe DMA fetch.
    pub fn rdma_read_latency_ns(self) -> u64 {
        const PCIE_DMA_NS: u64 = 400;
        let cfg = self.config();
        cfg.wire_rtt_ns(false) + 2 * self.rdma_nic_side_ns() + PCIE_DMA_NS
    }
}

/// Virtual CPU cost model for endpoint event loops: the simulator charges
/// these costs to decide when an endpoint polls next, bounding per-core
/// message rates the way a real CPU does.
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Cost of one event-loop pass that found no work.
    pub idle_poll_ns: u64,
    /// Cost per packet transmitted.
    pub per_tx_pkt_ns: u64,
    /// Cost per packet received.
    pub per_rx_pkt_ns: u64,
    /// Cost per request handler / continuation invoked (excluding
    /// application work, which the harness adds).
    pub per_callback_ns: u64,
    /// Cost per received payload byte (the RX-ring → msgbuf copy for
    /// multi-packet messages; §6.4 shows this copy caps one-core large-
    /// message bandwidth at ≈75 Gbps, rising to ≈92 Gbps without it).
    pub per_rx_byte_ns: f64,
}

impl CpuModel {
    /// Derive a model whose steady-state single-core request rate is
    /// roughly `rate` requests/sec when each RPC costs ~2 packets
    /// (symmetric client+server load as in §6.2's experiment).
    pub fn default_for_rate(rate: f64) -> Self {
        // One RPC at a symmetric endpoint ≈ 2 TX + 2 RX + 2 callbacks.
        let budget = 1e9 / rate; // ns per RPC
        let per_pkt = (budget / 6.0) as u64;
        Self {
            idle_poll_ns: 40,
            per_tx_pkt_ns: per_pkt,
            per_rx_pkt_ns: per_pkt,
            per_callback_ns: per_pkt,
            per_rx_byte_ns: 0.0,
        }
    }

    /// Add a per-received-byte copy cost (ns/B). 0.08 ns/B ≈ a 12 GB/s
    /// effective memcpy, which lands the Figure 6 plateau near the
    /// paper's 75 Gbps.
    pub fn with_rx_copy_cost(mut self, ns_per_byte: f64) -> Self {
        self.per_rx_byte_ns = ns_per_byte;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cx4_bdp_close_to_paper() {
        // Paper: cross-ToR RTT 6 µs at 25 GbE ⇒ BDP ≈ 19 kB. Our same-ToR
        // BDP sizes credits; it must be in the same regime (few kB – 19 kB).
        let cfg = Cluster::Cx4.config();
        let bdp = cfg.bdp_bytes();
        assert!(bdp > 4_000 && bdp < 25_000, "bdp = {bdp}");
        // Cross-ToR RTT should be near 6 µs.
        let rtt = cfg.rtt_ns(true);
        assert!((4_000..9_000).contains(&rtt), "rtt = {rtt}");
    }

    #[test]
    fn buffer_dwarfs_bdp() {
        // The paper's core observation: switch buffer ≫ BDP (12 MB vs 19 kB).
        let cfg = Cluster::Cx4.config();
        assert!(cfg.switch_buffer_bytes > 300 * cfg.bdp_bytes());
    }

    #[test]
    fn topology_counts() {
        let t = Topology::TwoTier {
            tors: 5,
            hosts_per_tor: 20,
            spines: 1,
        };
        assert_eq!(t.num_hosts(), 100);
        assert_eq!(t.num_switches(), 6);
        let s = Topology::SingleSwitch { hosts: 8 };
        assert_eq!(s.num_hosts(), 8);
        assert_eq!(s.num_switches(), 1);
    }
}
