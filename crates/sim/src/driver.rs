//! The simulation driver: interleaves endpoint CPU time with network
//! events.
//!
//! Endpoints in eRPC are *polling* event loops (§3.1); on real hardware
//! each loop iteration costs CPU time, which bounds per-core message rate.
//! The driver reproduces that: every endpoint reports how much virtual CPU
//! time its poll consumed (via [`crate::config::CpuModel`] or its own
//! accounting), and the driver schedules its next poll accordingly while
//! the fabric's events run in between.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::net::NetHandle;

/// Anything the driver can poll: wraps an `Rpc` event loop plus the
/// benchmark's application logic.
pub trait PolledEndpoint {
    /// Run one event-loop iteration at virtual time `now_ns`; return the
    /// virtual CPU nanoseconds the iteration consumed (≥ 0; the driver
    /// enforces a minimum of 1 ns between polls of the same endpoint).
    fn poll(&mut self, now_ns: u64) -> u64;
}

impl<F: FnMut(u64) -> u64> PolledEndpoint for F {
    fn poll(&mut self, now_ns: u64) -> u64 {
        self(now_ns)
    }
}

impl PolledEndpoint for Box<dyn PolledEndpoint + '_> {
    fn poll(&mut self, now_ns: u64) -> u64 {
        (**self).poll(now_ns)
    }
}

/// Drive `endpoints` against `net` until virtual time `until_ns`.
///
/// Fairness: endpoints poll in virtual-time order (ties broken by index),
/// so a busy endpoint cannot starve others — exactly like independent
/// cores.
pub fn run<E: PolledEndpoint>(net: &NetHandle, endpoints: &mut [E], until_ns: u64) {
    // Schedules start at the fabric's current time: `run` may be called in
    // slices, and a poll scheduled before "now" would hand the endpoint
    // CPU time it never had.
    let start = net.borrow().now_ns();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..endpoints.len()).map(|i| Reverse((start, i))).collect();
    while let Some(&Reverse((t, idx))) = heap.peek() {
        if t > until_ns {
            break;
        }
        heap.pop();
        net.borrow_mut().process_until(t);
        let cost = endpoints[idx].poll(t);
        heap.push(Reverse((t + cost.max(1), idx)));
    }
    net.borrow_mut().process_until(until_ns);
}

/// Like [`run`], but stops early once `done()` returns true (checked after
/// each poll). Returns the virtual time at which it stopped.
pub fn run_until<E: PolledEndpoint>(
    net: &NetHandle,
    endpoints: &mut [E],
    until_ns: u64,
    mut done: impl FnMut() -> bool,
) -> u64 {
    let start = net.borrow().now_ns();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..endpoints.len()).map(|i| Reverse((start, i))).collect();
    while let Some(&Reverse((t, idx))) = heap.peek() {
        if t > until_ns {
            break;
        }
        heap.pop();
        net.borrow_mut().process_until(t);
        let cost = endpoints[idx].poll(t);
        heap.push(Reverse((t + cost.max(1), idx)));
        if done() {
            return t;
        }
    }
    net.borrow_mut().process_until(until_ns);
    until_ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Cluster, Topology};
    use crate::net::SimNet;

    fn handle() -> NetHandle {
        let mut cfg = Cluster::Cx5.config();
        cfg.topology = Topology::SingleSwitch { hosts: 2 };
        SimNet::new(cfg).into_handle()
    }

    #[test]
    fn polls_interleave_by_cost() {
        let net = handle();
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let l0 = log.clone();
        let l1 = log.clone();
        // Endpoint 0 polls every 100 ns, endpoint 1 every 250 ns.
        let mut eps: Vec<Box<dyn FnMut(u64) -> u64>> = vec![
            Box::new(move |t| {
                l0.borrow_mut().push((0u8, t));
                100
            }),
            Box::new(move |t| {
                l1.borrow_mut().push((1u8, t));
                250
            }),
        ];
        run(&net, &mut eps, 1_000);
        let log = log.borrow();
        let c0 = log.iter().filter(|e| e.0 == 0).count();
        let c1 = log.iter().filter(|e| e.0 == 1).count();
        assert_eq!(c0, 11); // t = 0, 100, ..., 1000
        assert_eq!(c1, 5); // t = 0, 250, 500, 750, 1000
                           // Global order is by time.
        assert!(log.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let net = handle();
        let mut eps: Vec<Box<dyn FnMut(u64) -> u64>> = vec![Box::new(move |_t| 10)];
        let mut seen = 0;
        let t = run_until(&net, &mut eps, 1_000_000, || {
            seen += 1;
            seen >= 5
        });
        assert_eq!(t, 40); // polls at 0,10,20,30,40
    }

    #[test]
    fn zero_cost_poll_still_advances() {
        let net = handle();
        let polls = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let p = polls.clone();
        let mut eps: Vec<Box<dyn FnMut(u64) -> u64>> = vec![Box::new(move |_t| {
            p.set(p.get() + 1);
            0
        })];
        // Must terminate: min 1 ns enforced.
        run(&net, &mut eps, 100);
        assert_eq!(polls.get(), 101);
    }
}
