//! NIC memory-footprint accounting (Appendix A).
//!
//! The paper's claim: with multi-packet RQ descriptors and CQ overrun,
//! eRPC's per-core NIC memory footprint is **constant** — independent of
//! cluster size — while RDMA's connection state grows linearly with the
//! number of connections and overflows NIC SRAM (Figure 1).

/// Sizes of on-NIC structures for one eRPC endpoint (one CPU core).
#[derive(Debug, Clone)]
pub struct NicFootprintConfig {
    /// TX queue entries (64 suffice to hide PCIe latency, App. A).
    pub tx_queue_entries: usize,
    /// TX completion queue entries (64; unsignaled TX barely uses it).
    pub tx_cq_entries: usize,
    /// RX descriptors (|RQ|).
    pub rq_entries: usize,
    /// Packet buffers described per multi-packet RQ descriptor (512-way;
    /// 1 = traditional RQ).
    pub rq_multi_packet: usize,
    /// RX CQ entries (8, with overrun allowed, App. A).
    pub rx_cq_entries: usize,
    /// Bytes per queue descriptor / CQ entry (WQE ≈ 64 B).
    pub desc_bytes: usize,
}

impl Default for NicFootprintConfig {
    fn default() -> Self {
        Self {
            tx_queue_entries: 64,
            tx_cq_entries: 64,
            rq_entries: 4096,
            rq_multi_packet: 512,
            rx_cq_entries: 8,
            desc_bytes: 64,
        }
    }
}

impl NicFootprintConfig {
    /// On-NIC bytes used by one eRPC endpoint. Note the absence of any
    /// per-session or per-node term.
    pub fn erpc_bytes(&self) -> usize {
        let rq_descs = self.rq_entries.div_ceil(self.rq_multi_packet);
        (self.tx_queue_entries + self.tx_cq_entries + rq_descs + self.rx_cq_entries)
            * self.desc_bytes
    }

    /// On-NIC bytes for an RDMA design with `connections` connected QPs
    /// (≈375 B each, §4.1.2) plus the same queue structures.
    pub fn rdma_bytes(&self, connections: usize) -> usize {
        const CONN_STATE_BYTES: usize = 375;
        self.erpc_bytes() + connections * CONN_STATE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erpc_footprint_constant_in_cluster_size() {
        let cfg = NicFootprintConfig::default();
        // The footprint formula has no connection/node parameter at all;
        // assert it is small (a few KB).
        let b = cfg.erpc_bytes();
        assert!(b < 16 * 1024, "footprint {b} B should be tiny");
    }

    #[test]
    fn multi_packet_rq_divides_descriptor_count() {
        let mut cfg = NicFootprintConfig::default();
        let multi = cfg.erpc_bytes();
        cfg.rq_multi_packet = 1;
        let traditional = cfg.erpc_bytes();
        // 4096-entry RQ: 4096 descriptors vs 8 → dominates the footprint.
        assert!(traditional > multi * 10, "{traditional} vs {multi}");
    }

    #[test]
    fn rdma_footprint_grows_linearly() {
        let cfg = NicFootprintConfig::default();
        let f1k = cfg.rdma_bytes(1_000);
        let f5k = cfg.rdma_bytes(5_000);
        assert!(f5k > f1k * 3);
        // 5000 connections ≈ 1.8 MB of connection state (paper's number).
        assert!(f5k - cfg.erpc_bytes() == 5_000 * 375);
        assert!((f5k - cfg.erpc_bytes()) as f64 / (1 << 20) as f64 > 1.7);
    }
}
