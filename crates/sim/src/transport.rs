//! [`SimTransport`]: attaches an eRPC endpoint to the discrete-event
//! fabric. Implements [`erpc_transport::Transport`] with virtual time.

use erpc_transport::{Addr, RxToken, Transport, TransportStats, TxPacket};

use crate::net::{NetHandle, SimPacket};

/// Virtual CPU-time cost of a TX DMA-queue flush (§4.2.2: ≈2 µs).
pub const TX_FLUSH_PENALTY_NS: u64 = 2_000;

/// One endpoint of the simulated fabric. `!Send` by design: the simulation
/// is single-threaded (endpoint concurrency is virtual, via the
/// [`crate::Driver`]'s interleaving).
pub struct SimTransport {
    addr: Addr,
    net: NetHandle,
    claimed: Vec<SimPacket>,
    stats: TransportStats,
    /// Virtual CPU nanoseconds owed by this endpoint for rare-path work
    /// (TX flushes). Drained by the driver via `take_cpu_penalty_ns`.
    cpu_penalty_ns: u64,
}

impl SimTransport {
    /// Register `addr` on the fabric and return its transport.
    ///
    /// # Panics
    /// Panics if the address is already registered.
    pub fn new(net: NetHandle, addr: Addr) -> Self {
        net.borrow_mut()
            .register_endpoint(addr)
            .expect("endpoint registration");
        Self {
            addr,
            net,
            claimed: Vec::with_capacity(64),
            stats: TransportStats::default(),
            cpu_penalty_ns: 0,
        }
    }

    /// Shared fabric handle.
    pub fn net(&self) -> &NetHandle {
        &self.net
    }

    /// Drain accumulated rare-path CPU penalty (virtual ns). The driver
    /// adds this to the endpoint's next poll time.
    pub fn take_cpu_penalty_ns(&mut self) -> u64 {
        std::mem::take(&mut self.cpu_penalty_ns)
    }
}

impl Transport for SimTransport {
    fn addr(&self) -> Addr {
        self.addr
    }

    fn mtu(&self) -> usize {
        self.net.borrow().config().mtu
    }

    fn now_ns(&self) -> u64 {
        self.net.borrow().now_ns()
    }

    fn tx_burst(&mut self, pkts: &[TxPacket<'_>]) {
        let mut net = self.net.borrow_mut();
        for p in pkts {
            debug_assert!(p.len() <= net.config().mtu, "packet exceeds MTU");
            let mut bytes = Vec::with_capacity(p.len());
            bytes.extend_from_slice(p.hdr);
            bytes.extend_from_slice(p.data);
            self.stats.tx_pkts += 1;
            self.stats.tx_bytes += p.len() as u64;
            net.send(self.addr, p.dst, bytes);
        }
    }

    fn tx_flush(&mut self) {
        // All queued sends became events synchronously; the flush costs
        // virtual CPU time on the rare path that requests it.
        self.stats.tx_flushes += 1;
        self.cpu_penalty_ns += TX_FLUSH_PENALTY_NS;
    }

    fn rx_burst(&mut self, max: usize, out: &mut Vec<RxToken>) -> usize {
        let base = self.claimed.len();
        let n = self
            .net
            .borrow_mut()
            .rx_claim(self.addr, max, &mut self.claimed);
        for (i, pkt) in self.claimed[base..].iter().enumerate() {
            out.push(RxToken::new((base + i) as u64, pkt.bytes.len() as u32));
            self.stats.rx_pkts += 1;
            self.stats.rx_bytes += pkt.bytes.len() as u64;
        }
        n
    }

    fn rx_bytes(&self, tok: &RxToken) -> &[u8] {
        &self.claimed[tok.slot() as usize].bytes
    }

    fn rx_release(&mut self) {
        let n = self.claimed.len();
        if n > 0 {
            self.net.borrow_mut().rx_release(self.addr, n);
            self.claimed.clear();
        }
    }

    fn stats(&self) -> &TransportStats {
        &self.stats
    }

    fn rx_ring_size(&self) -> usize {
        self.net.borrow().config().host_ring_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Cluster, Topology};
    use crate::net::SimNet;

    fn two_endpoints() -> (NetHandle, SimTransport, SimTransport) {
        let mut cfg = Cluster::Cx5.config();
        cfg.topology = Topology::SingleSwitch { hosts: 2 };
        let net = SimNet::new(cfg).into_handle();
        let a = SimTransport::new(net.clone(), Addr::new(0, 0));
        let b = SimTransport::new(net.clone(), Addr::new(1, 0));
        (net, a, b)
    }

    #[test]
    fn transport_roundtrip() {
        let (net, mut a, mut b) = two_endpoints();
        a.tx_burst(&[TxPacket {
            dst: b.addr(),
            hdr: b"hd",
            data: b"payload",
        }]);
        net.borrow_mut().process_until(1_000_000);
        let mut toks = Vec::new();
        assert_eq!(b.rx_burst(8, &mut toks), 1);
        assert_eq!(b.rx_bytes(&toks[0]), b"hdpayload");
        b.rx_release();
        assert_eq!(b.stats().rx_pkts, 1);
    }

    #[test]
    fn virtual_clock_visible_through_transport() {
        let (net, a, _b) = two_endpoints();
        assert_eq!(a.now_ns(), 0);
        net.borrow_mut().process_until(5_000);
        assert_eq!(a.now_ns(), 5_000);
    }

    #[test]
    fn flush_accrues_cpu_penalty() {
        let (_net, mut a, _b) = two_endpoints();
        a.tx_flush();
        a.tx_flush();
        assert_eq!(a.take_cpu_penalty_ns(), 2 * TX_FLUSH_PENALTY_NS);
        assert_eq!(a.take_cpu_penalty_ns(), 0);
    }

    #[test]
    fn duplicate_registration_panics() {
        let (net, _a, _b) = two_endpoints();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SimTransport::new(net.clone(), Addr::new(0, 0))
        }));
        assert!(result.is_err());
    }
}
