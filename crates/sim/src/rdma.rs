//! RDMA baseline models (§4.1.2, Figures 1 and 6, Table 2).
//!
//! The paper's baselines are one-sided RDMA verbs measured with `perftest`
//! on Mellanox NICs. The performance-relevant mechanism is the NIC's SRAM
//! **connection cache**: each connection needs ≈375 B of state, the NIC has
//! ≈2 MB of SRAM shared with other structures, and a cache miss costs a DMA
//! read over PCIe (§4.1.2's "cache misses require expensive DMA reads").
//! We model an LRU cache with an effective capacity of ~1 MB (half the SRAM,
//! the rest holding queues/translations) and a per-miss service penalty.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Exact LRU set over dense u32 keys, implemented as an intrusive doubly
/// linked list over a slot vector (O(1) touch/evict).
pub struct LruSet {
    capacity: usize,
    /// key → slot index + 1 (0 = absent).
    index: std::collections::HashMap<u32, usize>,
    keys: Vec<u32>,
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize, // most recent; usize::MAX when empty
    tail: usize, // least recent
}

const NIL: usize = usize::MAX;

impl LruSet {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            index: std::collections::HashMap::with_capacity(capacity * 2),
            keys: Vec::with_capacity(capacity),
            prev: Vec::with_capacity(capacity),
            next: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
        }
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn unlink(&mut self, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Touch `key`: returns `true` on hit. On miss, inserts it (evicting
    /// the LRU entry if at capacity).
    pub fn access(&mut self, key: u32) -> bool {
        if let Some(&slot_plus) = self.index.get(&key) {
            let slot = slot_plus - 1;
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return true;
        }
        // Miss: insert, possibly evicting.
        let slot = if self.keys.len() < self.capacity {
            self.keys.push(key);
            self.prev.push(NIL);
            self.next.push(NIL);
            self.keys.len() - 1
        } else {
            let victim = self.tail;
            self.unlink(victim);
            self.index.remove(&self.keys[victim]);
            self.keys[victim] = key;
            victim
        };
        self.index.insert(key, slot + 1);
        self.push_front(slot);
        false
    }
}

/// Connection-cache and service-time parameters of a modelled RDMA NIC.
#[derive(Debug, Clone)]
pub struct RdmaNicModel {
    /// Effective SRAM available for connection state (≈half of the ~2 MB,
    /// the rest holds other structures; §4.1.2).
    pub cache_bytes: usize,
    /// Connection state size (≈375 B per Mellanox, §4.1.2).
    pub conn_state_bytes: usize,
    /// Effective per-op NIC processing when the connection is cached.
    /// Calibrated so an all-hit workload runs at ~45 M ops/s (Figure 1's
    /// plateau for ConnectX-5).
    pub hit_op_ns: f64,
    /// Extra effective service time when connection state must be DMA-read
    /// over PCIe (amortized over NIC parallelism).
    pub miss_penalty_ns: f64,
    /// PCIe DMA round trip at the responder for a one-sided read (adds to
    /// latency, not to the pipelined-rate model).
    pub pcie_dma_ns: u64,
    /// Per-WQE posting + doorbell overhead for large transfers (Figure 6).
    pub wqe_overhead_ns: u64,
}

impl Default for RdmaNicModel {
    fn default() -> Self {
        Self {
            cache_bytes: 1 << 20,
            conn_state_bytes: 375,
            hit_op_ns: 22.0,
            miss_penalty_ns: 50.0,
            pcie_dma_ns: 400,
            wqe_overhead_ns: 700,
        }
    }
}

impl RdmaNicModel {
    /// Connections the cache can hold.
    pub fn cache_entries(&self) -> usize {
        self.cache_bytes / self.conn_state_bytes
    }

    /// Figure 1: aggregate small-READ rate (M ops/s) when issuing 16 B
    /// reads over `connections` connections chosen uniformly at random.
    /// Deterministic given `seed`.
    pub fn read_rate_mops(&self, connections: usize, seed: u64) -> f64 {
        assert!(connections > 0);
        let mut cache = LruSet::new(self.cache_entries());
        let mut rng = SmallRng::seed_from_u64(seed);
        // Warm up the cache to steady state, then measure.
        let warm = connections * 4;
        let measured = 200_000usize;
        for _ in 0..warm {
            cache.access(rng.gen_range(0..connections as u32));
        }
        let mut total_ns = 0.0;
        for _ in 0..measured {
            let hit = cache.access(rng.gen_range(0..connections as u32));
            total_ns += self.hit_op_ns + if hit { 0.0 } else { self.miss_penalty_ns };
        }
        measured as f64 / total_ns * 1e3
    }

    /// Table 2: median latency of a small RDMA read across one switch,
    /// given the cluster's wire/NIC parameters: hardware RTT plus the
    /// responder-side PCIe DMA fetch of the payload.
    pub fn read_latency_ns(&self, cluster_rtt_ns: u64) -> u64 {
        cluster_rtt_ns + self.pcie_dma_ns
    }

    /// Figure 6: steady-state goodput (Gbit/s) of back-to-back `size`-byte
    /// RDMA writes on a `link_bps` link. One-sided writes pipeline at the
    /// NIC: per-op cost is WQE processing plus serialization.
    pub fn write_goodput_gbps(&self, size: usize, link_bps: f64) -> f64 {
        let ser_ns = size as f64 * 8e9 / link_bps;
        let op_ns = self.wqe_overhead_ns as f64 + ser_ns;
        (size as f64 * 8.0) / op_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_hit_miss_evict() {
        let mut l = LruSet::new(2);
        assert!(!l.access(1));
        assert!(!l.access(2));
        assert!(l.access(1)); // hit; makes 2 the LRU
        assert!(!l.access(3)); // evicts 2
        assert!(l.access(1));
        assert!(l.access(3));
        assert!(!l.access(2)); // 2 was evicted
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn lru_exactness_vs_model() {
        // Compare against a naive Vec-based LRU on a random trace.
        let mut l = LruSet::new(8);
        let mut model: Vec<u32> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let k = rng.gen_range(0..32u32);
            let hit = l.access(k);
            let model_hit = model.contains(&k);
            assert_eq!(hit, model_hit);
            model.retain(|&x| x != k);
            model.insert(0, k);
            model.truncate(8);
        }
    }

    #[test]
    fn fig1_shape_flat_then_declining() {
        let m = RdmaNicModel::default();
        let few = m.read_rate_mops(100, 1);
        let knee = m.read_rate_mops(m.cache_entries(), 1);
        let many = m.read_rate_mops(5_000, 1);
        // Plateau near 45 M/s with few connections.
        assert!((40.0..50.0).contains(&few), "few = {few}");
        // Still near the plateau at cache capacity.
        assert!(knee > few * 0.85);
        // ≈50 % down at 5000 connections (paper's headline).
        assert!(many < few * 0.62 && many > few * 0.38, "many = {many}");
    }

    #[test]
    fn fig1_monotone_decline() {
        let m = RdmaNicModel::default();
        let rates: Vec<f64> = [500, 1000, 2000, 3000, 4000, 5000]
            .iter()
            .map(|&c| m.read_rate_mops(c, 1))
            .collect();
        for w in rates.windows(2) {
            assert!(w[1] <= w[0] * 1.02, "rates must not increase: {rates:?}");
        }
    }

    #[test]
    fn write_goodput_approaches_line_rate() {
        let m = RdmaNicModel::default();
        let big = m.write_goodput_gbps(8 << 20, 100e9);
        let small = m.write_goodput_gbps(512, 100e9);
        assert!(big > 95.0, "8 MB writes ≈ line rate, got {big}");
        assert!(small < 10.0, "512 B writes are overhead-bound, got {small}");
    }
}
