//! The discrete-event fabric: hosts with NIC TX/RX models, switches with a
//! shared dynamic buffer pool, links with serialization and propagation
//! delay, ECMP routing, fault injection, and a virtual nanosecond clock.
//!
//! The simulation is single-threaded and deterministic given the config
//! seed. Endpoints attach via [`crate::SimTransport`] and are polled by a
//! [`crate::Driver`], which interleaves endpoint CPU time with network
//! events.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::rc::Rc;

use erpc_transport::Addr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{SimConfig, Topology};

/// A packet in flight through the fabric.
#[derive(Debug)]
pub struct SimPacket {
    pub src: Addr,
    pub dst: Addr,
    /// eRPC-layer bytes (header + payload).
    pub bytes: Vec<u8>,
    /// Bytes occupying wires and buffers (adds L2/L3/L4 overhead).
    pub wire_bytes: usize,
    /// Set by fault injection; the receiving NIC drops it (CRC fail).
    corrupted: bool,
}

/// Where a packet goes after leaving a switch port.
#[derive(Debug, Clone, Copy)]
enum NextHop {
    Switch(usize),
    Host,
}

#[derive(Debug)]
enum EvKind {
    /// Packet arrives at a switch.
    SwitchArrival { sw: usize, pkt: SimPacket },
    /// Packet finishes serializing out of a switch port.
    PortDeparture {
        sw: usize,
        port: usize,
        next: NextHop,
        pkt: SimPacket,
    },
    /// Packet arrives at the destination host NIC.
    HostArrival { pkt: SimPacket },
}

struct Ev {
    time: u64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// One switch output port.
#[derive(Debug, Default)]
struct Port {
    rate_bps: f64,
    busy_until_ns: u64,
    queue_bytes: usize,
    /// Peak queue depth observed (Table 5 reports switch queueing).
    pub max_queue_bytes: usize,
    pub drops: u64,
    pub ecn_marks: u64,
}

/// A shared-buffer switch.
struct Switch {
    ports: Vec<Port>,
    buffer_used: usize,
    pub max_buffer_used: usize,
}

/// Per-endpoint RX state at a host NIC.
struct EndpointRx {
    queue: VecDeque<SimPacket>,
    /// Packets claimed by the transport but not yet released — they still
    /// hold RX descriptors (§4.2.3's ownership rule).
    outstanding: usize,
    capacity: usize,
    pub drops_rq_empty: u64,
}

struct Host {
    tx_busy_until_ns: u64,
    endpoints: HashMap<u8, EndpointRx>,
    /// Set when the host is "failed": all traffic to it is dropped.
    failed: bool,
}

/// Fabric-wide counters.
#[derive(Debug, Default, Clone)]
pub struct NetStats {
    pub pkts_sent: u64,
    pub pkts_delivered: u64,
    pub drops_fault: u64,
    pub drops_corrupt: u64,
    pub drops_switch_buffer: u64,
    pub drops_host_ring: u64,
    pub drops_host_failed: u64,
    pub ecn_marks: u64,
}

/// Per-switch observability snapshot.
#[derive(Debug, Clone)]
pub struct SwitchStats {
    pub max_buffer_used: usize,
    pub port_max_queue_bytes: Vec<usize>,
    pub port_drops: Vec<u64>,
    pub port_ecn_marks: Vec<u64>,
}

/// The simulated network. Wrap in `Rc<RefCell<…>>` (see [`SimNet::into_handle`])
/// and share among [`crate::SimTransport`]s and the [`crate::Driver`].
pub struct SimNet {
    cfg: SimConfig,
    now_ns: u64,
    seq: u64,
    events: BinaryHeap<Reverse<Ev>>,
    switches: Vec<Switch>,
    hosts: Vec<Host>,
    rng: SmallRng,
    pub stats: NetStats,
}

/// Shared handle to a [`SimNet`].
pub type NetHandle = Rc<RefCell<SimNet>>;

impl SimNet {
    pub fn new(cfg: SimConfig) -> Self {
        let n_hosts = cfg.topology.num_hosts();
        let switches = match cfg.topology {
            Topology::SingleSwitch { hosts } => {
                vec![Switch::new(hosts, cfg.link_bps, 0, 0.0)]
            }
            Topology::TwoTier {
                tors,
                hosts_per_tor,
                spines,
            } => {
                let mut v: Vec<Switch> = (0..tors)
                    .map(|_| Switch::new(hosts_per_tor, cfg.link_bps, spines, cfg.uplink_bps))
                    .collect();
                v.extend((0..spines).map(|_| Switch::new(0, 0.0, tors, cfg.uplink_bps)));
                v
            }
        };
        let hosts = (0..n_hosts)
            .map(|_| Host {
                tx_busy_until_ns: 0,
                endpoints: HashMap::new(),
                failed: false,
            })
            .collect();
        Self {
            now_ns: 0,
            seq: 0,
            events: BinaryHeap::new(),
            switches,
            hosts,
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            stats: NetStats::default(),
        }
    }

    pub fn into_handle(self) -> NetHandle {
        Rc::new(RefCell::new(self))
    }

    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current virtual time.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Register an endpoint's RX ring; must be called before traffic flows
    /// to `addr`. Returns an error message if the address is taken.
    pub fn register_endpoint(&mut self, addr: Addr) -> Result<(), String> {
        let cap = self.cfg.host_ring_capacity;
        let host = self
            .hosts
            .get_mut(addr.node as usize)
            .ok_or_else(|| format!("node {} out of range", addr.node))?;
        if host.endpoints.contains_key(&addr.rpc) {
            return Err(format!("endpoint {addr} registered twice"));
        }
        host.endpoints.insert(
            addr.rpc,
            EndpointRx {
                queue: VecDeque::new(),
                outstanding: 0,
                capacity: cap,
                drops_rq_empty: 0,
            },
        );
        Ok(())
    }

    /// Mark a host as failed: in-flight and future packets to it vanish,
    /// and its own sends stop (used for the node-failure experiments).
    pub fn fail_host(&mut self, node: u16) {
        self.hosts[node as usize].failed = true;
    }

    /// Revive a failed host.
    pub fn recover_host(&mut self, node: u16) {
        self.hosts[node as usize].failed = false;
    }

    pub fn host_is_failed(&self, node: u16) -> bool {
        self.hosts[node as usize].failed
    }

    fn push_event(&mut self, time: u64, kind: EvKind) {
        self.seq += 1;
        self.events.push(Reverse(Ev {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn ser_ns(bytes: usize, rate_bps: f64) -> u64 {
        (bytes as f64 * 8e9 / rate_bps) as u64
    }

    /// ToR switch index of a host.
    fn tor_of(&self, node: usize) -> usize {
        match self.cfg.topology {
            Topology::SingleSwitch { .. } => 0,
            Topology::TwoTier { hosts_per_tor, .. } => node / hosts_per_tor,
        }
    }

    /// Inject a packet from `src`'s NIC. Called by `SimTransport::tx_burst`.
    pub fn send(&mut self, src: Addr, dst: Addr, bytes: Vec<u8>) {
        self.stats.pkts_sent += 1;
        if self.hosts[src.node as usize].failed {
            self.stats.drops_host_failed += 1;
            return;
        }
        // Fault injection.
        let f = self.cfg.faults.clone();
        if f.drop_prob > 0.0 && self.rng.gen_bool(f.drop_prob) {
            self.stats.drops_fault += 1;
            return;
        }
        let corrupted = f.corrupt_prob > 0.0 && self.rng.gen_bool(f.corrupt_prob);
        let reorder_ns = if f.reorder_prob > 0.0 && self.rng.gen_bool(f.reorder_prob) {
            f.reorder_delay_ns
        } else {
            0
        };
        let wire_bytes = bytes.len() + self.cfg.wire_overhead_bytes;
        let pkt = SimPacket {
            src,
            dst,
            bytes,
            wire_bytes,
            corrupted,
        };

        // Host NIC TX: descriptor/DMA processing, then serialization onto
        // the access link (shared by all endpoints of the host).
        let host = &mut self.hosts[src.node as usize];
        let start = (self.now_ns + self.cfg.nic_tx_ns).max(host.tx_busy_until_ns);
        let end = start + Self::ser_ns(wire_bytes, self.cfg.link_bps);
        host.tx_busy_until_ns = end;
        let ingress = self.tor_of(src.node as usize);
        let arrival = end + self.cfg.prop_delay_ns + reorder_ns;
        self.push_event(arrival, EvKind::SwitchArrival { sw: ingress, pkt });
    }

    /// ECMP spine choice: deterministic per flow (src, dst) pair, so
    /// intra-flow ordering is preserved (§5.3's assumption).
    fn ecmp_spine(&self, src: Addr, dst: Addr, spines: usize) -> usize {
        let mut h = (src.key() as u64) << 32 | dst.key() as u64;
        // SplitMix64 finalizer.
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58476d1ce4e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d049bb133111eb);
        h ^= h >> 31;
        (h % spines as u64) as usize
    }

    /// Route from switch `sw` toward `pkt.dst`: (port index, next hop).
    fn route(&self, sw: usize, pkt: &SimPacket) -> (usize, NextHop) {
        match self.cfg.topology {
            Topology::SingleSwitch { .. } => (pkt.dst.node as usize, NextHop::Host),
            Topology::TwoTier {
                tors,
                hosts_per_tor,
                spines,
            } => {
                let dst_tor = pkt.dst.node as usize / hosts_per_tor;
                if sw < tors {
                    if dst_tor == sw {
                        // Downlink port = local host index.
                        (pkt.dst.node as usize % hosts_per_tor, NextHop::Host)
                    } else {
                        let spine = self.ecmp_spine(pkt.src, pkt.dst, spines);
                        (hosts_per_tor + spine, NextHop::Switch(tors + spine))
                    }
                } else {
                    // Spine: one port per ToR.
                    (dst_tor, NextHop::Switch(dst_tor))
                }
            }
        }
    }

    fn handle_switch_arrival(&mut self, sw: usize, mut pkt: SimPacket) {
        let (port_idx, next) = self.route(sw, &pkt);
        let now = self.now_ns;
        let switch_latency = self.cfg.switch_latency_ns;
        let dt_alpha = self.cfg.dt_alpha;
        let pool = self.cfg.switch_buffer_bytes;
        let ecn_cfg = self.cfg.ecn.clone();

        let switch = &mut self.switches[sw];
        let free = pool.saturating_sub(switch.buffer_used);
        let port = &mut switch.ports[port_idx];
        // Dynamic-threshold admission: queue may grow to α × free pool.
        let threshold = (dt_alpha * free as f64) as usize;
        if port.queue_bytes + pkt.wire_bytes > threshold {
            port.drops += 1;
            self.stats.drops_switch_buffer += 1;
            return;
        }
        // ECN marking on enqueue (RED-style ramp), before buffering.
        if let Some(ecn) = &ecn_cfg {
            let q = port.queue_bytes;
            let p = if q <= ecn.kmin_bytes {
                0.0
            } else if q >= ecn.kmax_bytes {
                1.0
            } else {
                ecn.pmax * (q - ecn.kmin_bytes) as f64 / (ecn.kmax_bytes - ecn.kmin_bytes) as f64
            };
            if p > 0.0 && self.rng.gen_bool(p.min(1.0)) {
                if let Some(b) = pkt.bytes.get_mut(ecn.flag_byte) {
                    *b |= ecn.flag_mask;
                    port.ecn_marks += 1;
                    self.stats.ecn_marks += 1;
                }
            }
        }
        port.queue_bytes += pkt.wire_bytes;
        port.max_queue_bytes = port.max_queue_bytes.max(port.queue_bytes);
        switch.buffer_used += pkt.wire_bytes;
        switch.max_buffer_used = switch.max_buffer_used.max(switch.buffer_used);

        let start = (now + switch_latency).max(port.busy_until_ns);
        let end = start + Self::ser_ns(pkt.wire_bytes, port.rate_bps);
        port.busy_until_ns = end;
        self.push_event(
            end,
            EvKind::PortDeparture {
                sw,
                port: port_idx,
                next,
                pkt,
            },
        );
    }

    fn handle_port_departure(&mut self, sw: usize, port: usize, next: NextHop, pkt: SimPacket) {
        let switch = &mut self.switches[sw];
        switch.ports[port].queue_bytes -= pkt.wire_bytes;
        switch.buffer_used -= pkt.wire_bytes;
        let arrival = self.now_ns + self.cfg.prop_delay_ns;
        match next {
            NextHop::Switch(next_sw) => {
                self.push_event(arrival, EvKind::SwitchArrival { sw: next_sw, pkt })
            }
            NextHop::Host => {
                self.push_event(arrival + self.cfg.nic_rx_ns, EvKind::HostArrival { pkt })
            }
        }
    }

    fn handle_host_arrival(&mut self, pkt: SimPacket) {
        if pkt.corrupted {
            self.stats.drops_corrupt += 1;
            return;
        }
        let host = &mut self.hosts[pkt.dst.node as usize];
        if host.failed {
            self.stats.drops_host_failed += 1;
            return;
        }
        let Some(ep) = host.endpoints.get_mut(&pkt.dst.rpc) else {
            self.stats.drops_host_ring += 1;
            return;
        };
        // RX descriptor accounting: queued + claimed-but-unreleased packets
        // all hold descriptors.
        if ep.queue.len() + ep.outstanding >= ep.capacity {
            ep.drops_rq_empty += 1;
            self.stats.drops_host_ring += 1;
            return;
        }
        ep.queue.push_back(pkt);
        self.stats.pkts_delivered += 1;
    }

    /// Process all events with `time ≤ until_ns`, then advance the clock to
    /// `until_ns`.
    pub fn process_until(&mut self, until_ns: u64) {
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.time > until_ns {
                break;
            }
            let Reverse(ev) = self.events.pop().unwrap();
            self.now_ns = self.now_ns.max(ev.time);
            match ev.kind {
                EvKind::SwitchArrival { sw, pkt } => self.handle_switch_arrival(sw, pkt),
                EvKind::PortDeparture {
                    sw,
                    port,
                    next,
                    pkt,
                } => self.handle_port_departure(sw, port, next, pkt),
                EvKind::HostArrival { pkt } => self.handle_host_arrival(pkt),
            }
        }
        self.now_ns = self.now_ns.max(until_ns);
    }

    /// Time of the next pending event, if any.
    pub fn next_event_ns(&self) -> Option<u64> {
        self.events.peek().map(|Reverse(e)| e.time)
    }

    /// True if no packets are in flight.
    pub fn idle(&self) -> bool {
        self.events.is_empty()
    }

    /// Pop up to `max` packets from `addr`'s RX ring. The packets keep
    /// holding RX descriptors until [`SimNet::rx_release`]. Used by
    /// `SimTransport` (and tests that inspect deliveries directly).
    pub fn rx_claim(&mut self, addr: Addr, max: usize, out: &mut Vec<SimPacket>) -> usize {
        let Some(ep) = self.hosts[addr.node as usize].endpoints.get_mut(&addr.rpc) else {
            return 0;
        };
        let mut n = 0;
        while n < max {
            let Some(pkt) = ep.queue.pop_front() else {
                break;
            };
            ep.outstanding += 1;
            out.push(pkt);
            n += 1;
        }
        n
    }

    /// Return `n` descriptors to `addr`'s RX ring.
    pub fn rx_release(&mut self, addr: Addr, n: usize) {
        if let Some(ep) = self.hosts[addr.node as usize].endpoints.get_mut(&addr.rpc) {
            debug_assert!(ep.outstanding >= n);
            ep.outstanding -= n;
        }
    }

    /// Snapshot of a switch's queue statistics.
    pub fn switch_stats(&self, sw: usize) -> SwitchStats {
        let s = &self.switches[sw];
        SwitchStats {
            max_buffer_used: s.max_buffer_used,
            port_max_queue_bytes: s.ports.iter().map(|p| p.max_queue_bytes).collect(),
            port_drops: s.ports.iter().map(|p| p.drops).collect(),
            port_ecn_marks: s.ports.iter().map(|p| p.ecn_marks).collect(),
        }
    }

    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Drops at an endpoint's RX ring due to descriptor exhaustion.
    pub fn endpoint_rq_drops(&self, addr: Addr) -> u64 {
        self.hosts[addr.node as usize]
            .endpoints
            .get(&addr.rpc)
            .map(|e| e.drops_rq_empty)
            .unwrap_or(0)
    }
}

impl Switch {
    fn new(downlinks: usize, down_bps: f64, uplinks: usize, up_bps: f64) -> Self {
        let mut ports = Vec::with_capacity(downlinks + uplinks);
        for _ in 0..downlinks {
            ports.push(Port {
                rate_bps: down_bps,
                ..Default::default()
            });
        }
        for _ in 0..uplinks {
            ports.push(Port {
                rate_bps: up_bps,
                ..Default::default()
            });
        }
        Self {
            ports,
            buffer_used: 0,
            max_buffer_used: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Cluster, FaultConfig};

    fn small_net() -> SimNet {
        let mut cfg = Cluster::Cx5.config();
        cfg.topology = Topology::SingleSwitch { hosts: 4 };
        let mut net = SimNet::new(cfg);
        for n in 0..4 {
            net.register_endpoint(Addr::new(n, 0)).unwrap();
        }
        net
    }

    fn drain_one(net: &mut SimNet, addr: Addr) -> Option<SimPacket> {
        let mut v = Vec::new();
        net.rx_claim(addr, 1, &mut v);
        if v.is_empty() {
            None
        } else {
            net.rx_release(addr, 1);
            Some(v.remove(0))
        }
    }

    #[test]
    fn packet_delivery_and_latency() {
        let mut net = small_net();
        let (a, b) = (Addr::new(0, 0), Addr::new(1, 0));
        net.send(a, b, vec![7u8; 60]);
        net.process_until(1_000_000);
        let pkt = drain_one(&mut net, b).expect("delivered");
        assert_eq!(pkt.bytes, vec![7u8; 60]);
        assert_eq!(net.stats.pkts_delivered, 1);
        // One-way latency of a small packet must be on the order of the
        // configured NIC + switch + propagation budget (≈1 µs), not ms.
        assert!(net.now_ns() >= 1_000);
    }

    #[test]
    fn one_way_delay_matches_components() {
        let mut net = small_net();
        let cfg = net.config().clone();
        let (a, b) = (Addr::new(0, 0), Addr::new(1, 0));
        let bytes = 100usize;
        let wire = bytes + cfg.wire_overhead_bytes;
        let ser = (wire as f64 * 8e9 / cfg.link_bps) as u64;
        let expect = cfg.nic_tx_ns
            + ser
            + cfg.prop_delay_ns
            + cfg.switch_latency_ns
            + ser
            + cfg.prop_delay_ns
            + cfg.nic_rx_ns;
        net.send(a, b, vec![0u8; bytes]);
        // Find exact delivery time by stepping to each event.
        let mut t = 0;
        while net.stats.pkts_delivered == 0 {
            t = net.next_event_ns().expect("must deliver");
            net.process_until(t);
        }
        assert_eq!(t, expect, "delivery {t} vs component sum {expect}");
    }

    #[test]
    fn unregistered_endpoint_drops() {
        let mut net = small_net();
        net.send(Addr::new(0, 0), Addr::new(2, 7), vec![0u8; 10]);
        net.process_until(1_000_000);
        assert_eq!(net.stats.pkts_delivered, 0);
        assert_eq!(net.stats.drops_host_ring, 1);
    }

    #[test]
    fn rx_descriptor_exhaustion_drops() {
        let mut cfg = Cluster::Cx5.config();
        cfg.topology = Topology::SingleSwitch { hosts: 2 };
        cfg.host_ring_capacity = 8;
        let mut net = SimNet::new(cfg);
        net.register_endpoint(Addr::new(0, 0)).unwrap();
        net.register_endpoint(Addr::new(1, 0)).unwrap();
        for _ in 0..20 {
            net.send(Addr::new(0, 0), Addr::new(1, 0), vec![0u8; 32]);
        }
        net.process_until(10_000_000);
        assert_eq!(net.stats.pkts_delivered, 8);
        assert_eq!(net.endpoint_rq_drops(Addr::new(1, 0)), 12);
    }

    #[test]
    fn claimed_packets_hold_descriptors() {
        let mut cfg = Cluster::Cx5.config();
        cfg.topology = Topology::SingleSwitch { hosts: 2 };
        cfg.host_ring_capacity = 4;
        let mut net = SimNet::new(cfg);
        net.register_endpoint(Addr::new(0, 0)).unwrap();
        net.register_endpoint(Addr::new(1, 0)).unwrap();
        for _ in 0..4 {
            net.send(Addr::new(0, 0), Addr::new(1, 0), vec![0u8; 16]);
        }
        net.process_until(10_000_000);
        let mut v = Vec::new();
        assert_eq!(net.rx_claim(Addr::new(1, 0), 4, &mut v), 4);
        // Ring slots are still held: a new packet is dropped.
        net.send(Addr::new(0, 0), Addr::new(1, 0), vec![0u8; 16]);
        net.process_until(20_000_000);
        assert_eq!(net.endpoint_rq_drops(Addr::new(1, 0)), 1);
        // Releasing descriptors lets traffic flow again.
        net.rx_release(Addr::new(1, 0), 4);
        net.send(Addr::new(0, 0), Addr::new(1, 0), vec![0u8; 16]);
        net.process_until(30_000_000);
        assert_eq!(net.endpoint_rq_drops(Addr::new(1, 0)), 1);
    }

    #[test]
    fn fault_drop_is_deterministic() {
        let run = || {
            let mut cfg = Cluster::Cx5.config();
            cfg.topology = Topology::SingleSwitch { hosts: 2 };
            cfg.faults = FaultConfig {
                drop_prob: 0.3,
                ..Default::default()
            };
            let mut net = SimNet::new(cfg);
            net.register_endpoint(Addr::new(0, 0)).unwrap();
            net.register_endpoint(Addr::new(1, 0)).unwrap();
            for _ in 0..200 {
                net.send(Addr::new(0, 0), Addr::new(1, 0), vec![0u8; 16]);
            }
            net.process_until(100_000_000);
            (net.stats.pkts_delivered, net.stats.drops_fault)
        };
        assert_eq!(run(), run());
        let (ok, dropped) = run();
        assert_eq!(ok + dropped, 200);
        assert!(dropped > 20 && dropped < 120);
    }

    #[test]
    fn corruption_drops_at_receiver() {
        let mut cfg = Cluster::Cx5.config();
        cfg.topology = Topology::SingleSwitch { hosts: 2 };
        cfg.faults = FaultConfig {
            corrupt_prob: 1.0,
            ..Default::default()
        };
        let mut net = SimNet::new(cfg);
        net.register_endpoint(Addr::new(0, 0)).unwrap();
        net.register_endpoint(Addr::new(1, 0)).unwrap();
        net.send(Addr::new(0, 0), Addr::new(1, 0), vec![0u8; 16]);
        net.process_until(10_000_000);
        assert_eq!(net.stats.drops_corrupt, 1);
        assert_eq!(net.stats.pkts_delivered, 0);
    }

    #[test]
    fn failed_host_blackholes() {
        let mut net = small_net();
        net.fail_host(1);
        net.send(Addr::new(0, 0), Addr::new(1, 0), vec![0u8; 16]);
        net.process_until(10_000_000);
        assert_eq!(net.stats.drops_host_failed, 1);
        net.recover_host(1);
        net.send(Addr::new(0, 0), Addr::new(1, 0), vec![0u8; 16]);
        net.process_until(20_000_000);
        assert_eq!(net.stats.pkts_delivered, 1);
    }

    #[test]
    fn cross_tor_routing_two_tier() {
        let mut cfg = Cluster::Cx4.config();
        cfg.topology = Topology::TwoTier {
            tors: 2,
            hosts_per_tor: 2,
            spines: 2,
        };
        let mut net = SimNet::new(cfg);
        for n in 0..4 {
            net.register_endpoint(Addr::new(n, 0)).unwrap();
        }
        // host 0 (ToR 0) → host 3 (ToR 1): must traverse a spine.
        net.send(Addr::new(0, 0), Addr::new(3, 0), vec![0u8; 32]);
        net.process_until(100_000_000);
        assert_eq!(net.stats.pkts_delivered, 1);
        // Same-ToR: 0 → 1 does not touch spines.
        net.send(Addr::new(0, 0), Addr::new(1, 0), vec![0u8; 32]);
        net.process_until(200_000_000);
        assert_eq!(net.stats.pkts_delivered, 2);
    }

    #[test]
    fn incast_fills_victim_port_queue() {
        // 8 senders blast one receiver: its ToR downlink queue must build.
        let mut cfg = Cluster::Cx5.config();
        cfg.topology = Topology::SingleSwitch { hosts: 9 };
        let mut net = SimNet::new(cfg);
        for n in 0..9 {
            net.register_endpoint(Addr::new(n, 0)).unwrap();
        }
        for sender in 1..9u16 {
            for _ in 0..100 {
                net.send(Addr::new(sender, 0), Addr::new(0, 0), vec![0u8; 1024]);
            }
        }
        net.process_until(1_000_000_000);
        let st = net.switch_stats(0);
        assert!(
            st.port_max_queue_bytes[0] > 100 * 1024,
            "queue must build at victim port"
        );
        assert_eq!(net.stats.pkts_delivered, 800);
    }

    #[test]
    fn switch_buffer_overflow_drops() {
        // Shrink the shared pool so an incast overflows it.
        let mut cfg = Cluster::Cx5.config();
        cfg.topology = Topology::SingleSwitch { hosts: 9 };
        cfg.switch_buffer_bytes = 64 * 1024;
        let mut net = SimNet::new(cfg);
        for n in 0..9 {
            net.register_endpoint(Addr::new(n, 0)).unwrap();
        }
        for sender in 1..9u16 {
            for _ in 0..200 {
                net.send(Addr::new(sender, 0), Addr::new(0, 0), vec![0u8; 1024]);
            }
        }
        net.process_until(2_000_000_000);
        assert!(net.stats.drops_switch_buffer > 0);
        assert!(net.stats.pkts_delivered > 0);
    }

    #[test]
    fn ecn_marks_under_queueing() {
        let mut cfg = Cluster::Cx5.config();
        cfg.topology = Topology::SingleSwitch { hosts: 9 };
        cfg.ecn = Some(crate::config::EcnConfig {
            kmin_bytes: 8 * 1024,
            kmax_bytes: 64 * 1024,
            pmax: 1.0,
            flag_byte: 0,
            flag_mask: 0x80,
        });
        let mut net = SimNet::new(cfg);
        for n in 0..9 {
            net.register_endpoint(Addr::new(n, 0)).unwrap();
        }
        for sender in 1..9u16 {
            for _ in 0..100 {
                net.send(Addr::new(sender, 0), Addr::new(0, 0), vec![0u8; 1024]);
            }
        }
        net.process_until(1_000_000_000);
        assert!(net.stats.ecn_marks > 0);
        // Marked packets carry the flag bit.
        let mut v = Vec::new();
        net.rx_claim(Addr::new(0, 0), 800, &mut v);
        let marked = v.iter().filter(|p| p.bytes[0] & 0x80 != 0).count();
        assert_eq!(marked as u64, net.stats.ecn_marks);
    }

    #[test]
    fn reorder_fault_reorders() {
        let mut cfg = Cluster::Cx5.config();
        cfg.topology = Topology::SingleSwitch { hosts: 2 };
        cfg.faults = FaultConfig {
            reorder_prob: 0.2,
            reorder_delay_ns: 50_000,
            ..Default::default()
        };
        let mut net = SimNet::new(cfg);
        net.register_endpoint(Addr::new(0, 0)).unwrap();
        net.register_endpoint(Addr::new(1, 0)).unwrap();
        for i in 0..100u32 {
            net.send(Addr::new(0, 0), Addr::new(1, 0), i.to_le_bytes().to_vec());
        }
        net.process_until(1_000_000_000);
        let mut v = Vec::new();
        net.rx_claim(Addr::new(1, 0), 200, &mut v);
        assert_eq!(v.len(), 100);
        let order: Vec<u32> = v
            .iter()
            .map(|p| u32::from_le_bytes(p.bytes[..4].try_into().unwrap()))
            .collect();
        assert!(
            order.windows(2).any(|w| w[0] > w[1]),
            "expected at least one inversion"
        );
    }
}
