//! Fabric conservation properties: every packet sent is either delivered
//! or accounted to exactly one drop reason — across random topologies,
//! traffic patterns, fault rates, and buffer sizes. (Seeded-RNG case
//! generation; the workspace builds offline, so no proptest.)

use erpc_sim::{FaultConfig, SimNet, Topology};
use erpc_transport::Addr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn packets_are_conserved() {
    for case in 0u64..48 {
        let mut rng = SmallRng::seed_from_u64(0xC0A5E17E ^ case);
        let hosts = rng.gen_range(2usize..10);
        let two_tier = rng.gen_bool(0.5);
        let n_pkts = rng.gen_range(1usize..300);
        let pkt_size = rng.gen_range(16usize..1000);
        let drop_prob = rng.gen_range(0.0f64..0.3);
        let corrupt_prob = rng.gen_range(0.0f64..0.2);
        let tiny_buffer = rng.gen_bool(0.5);
        let ring_capacity = rng.gen_range(2usize..64);
        let seed = rng.gen::<u64>();

        let mut cfg = erpc_sim::Cluster::Cx4.config();
        cfg.topology = if two_tier && hosts >= 4 {
            Topology::TwoTier {
                tors: 2,
                hosts_per_tor: hosts / 2,
                spines: 1,
            }
        } else {
            Topology::SingleSwitch { hosts }
        };
        let hosts = cfg.topology.num_hosts();
        cfg.faults = FaultConfig {
            drop_prob,
            corrupt_prob,
            ..Default::default()
        };
        if tiny_buffer {
            cfg.switch_buffer_bytes = 4 * 1024; // force switch drops
        }
        cfg.host_ring_capacity = ring_capacity; // force RQ drops
        cfg.seed = seed;
        let mut net = SimNet::new(cfg);
        for h in 0..hosts {
            net.register_endpoint(Addr::new(h as u16, 0)).unwrap();
        }
        // Random-ish all-to-one + one-to-all mix (deterministic from seed).
        for i in 0..n_pkts {
            let src = Addr::new((i % hosts) as u16, 0);
            let dst = Addr::new(((i * 7 + 1) % hosts) as u16, 0);
            if src != dst {
                net.send(src, dst, vec![(i % 251) as u8; pkt_size]);
            }
        }
        net.process_until(10_000_000_000);
        assert!(net.idle(), "events must drain (case {case})");
        let s = net.stats.clone();
        assert_eq!(
            s.pkts_sent,
            s.pkts_delivered
                + s.drops_fault
                + s.drops_corrupt
                + s.drops_switch_buffer
                + s.drops_host_ring
                + s.drops_host_failed,
            "conservation violated (case {case}): {:?}",
            &s
        );
        // Whatever was delivered is claimable, intact, exactly once.
        let mut claimed = 0u64;
        for h in 0..hosts {
            let mut v = Vec::new();
            net.rx_claim(Addr::new(h as u16, 0), usize::MAX >> 1, &mut v);
            for p in &v {
                assert_eq!(p.bytes.len(), pkt_size);
            }
            claimed += v.len() as u64;
        }
        assert_eq!(claimed, s.pkts_delivered);
    }
}

#[test]
fn failed_hosts_never_receive() {
    for case in 0u64..16 {
        let mut rng = SmallRng::seed_from_u64(0xFA11ED ^ case);
        let hosts = rng.gen_range(3usize..8);
        let n_pkts = rng.gen_range(1usize..100);
        let seed = rng.gen::<u64>();

        let mut cfg = erpc_sim::Cluster::Cx5.config();
        cfg.topology = Topology::SingleSwitch { hosts };
        cfg.seed = seed;
        let mut net = SimNet::new(cfg);
        for h in 0..hosts {
            net.register_endpoint(Addr::new(h as u16, 0)).unwrap();
        }
        net.fail_host(0);
        for i in 0..n_pkts {
            let src = Addr::new((1 + i % (hosts - 1)) as u16, 0);
            net.send(src, Addr::new(0, 0), vec![1, 2, 3]);
        }
        net.process_until(1_000_000_000);
        let mut v = Vec::new();
        net.rx_claim(Addr::new(0, 0), 10_000, &mut v);
        assert!(v.is_empty(), "failed host must receive nothing");
        assert_eq!(net.stats.drops_host_failed, n_pkts as u64);
    }
}
