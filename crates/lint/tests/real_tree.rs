//! The repo's own tree must lint clean: every unsafe site documented,
//! every hot-path impurity fixed or justified inline, the DESIGN.md
//! unsafe audit current. This is the same check CI runs as
//! `cargo run -p erpc-lint -- check`, hooked into `cargo test` so a
//! drift cannot land without failing tests either.

use std::path::PathBuf;

#[test]
fn repo_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint lives two levels under the repo root")
        .to_path_buf();
    let findings = erpc_lint::run_check(&root).expect("repo tree must load");
    assert!(
        findings.is_empty(),
        "erpc-lint found {} problem(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
