//! End-to-end run over the fixture mini-tree in `fixtures/tree/`: a fake
//! repo (own `lint.toml`, stale `DESIGN.md`, one library crate) with one
//! seeded violation per rule. This is the "linter actually fires" half
//! of the contract; `real_tree.rs` is the "tree is actually clean" half.

use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/tree")
}

fn findings() -> Vec<erpc_lint::rules::Finding> {
    erpc_lint::run_check(&fixture_root()).expect("fixture tree must load")
}

#[test]
fn every_seeded_violation_fires() {
    let got: Vec<(String, String, u32)> = findings()
        .iter()
        .map(|f| (f.rule.to_string(), f.file.clone(), f.line))
        .collect();
    let want = [
        ("inventory-drift", "DESIGN.md", 1),
        ("hot-path-panic", "crates/fx/src/allows.rs", 8),
        ("unused-allow", "crates/fx/src/allows.rs", 12),
        ("malformed-allow", "crates/fx/src/allows.rs", 16),
        ("hot-path-alloc", "crates/fx/src/hot.rs", 5),
        ("hot-path-clock", "crates/fx/src/hot.rs", 6),
        ("hot-path-panic", "crates/fx/src/hot.rs", 7),
        ("no-print", "crates/fx/src/prints.rs", 5),
        ("no-print", "crates/fx/src/prints.rs", 6),
        ("safety-comment", "crates/fx/src/unsafe_sites.rs", 8),
        ("safety-comment", "crates/fx/src/unsafe_sites.rs", 13),
    ];
    let want: Vec<(String, String, u32)> = want
        .iter()
        .map(|(r, f, l)| (r.to_string(), f.to_string(), *l))
        .collect();
    assert_eq!(
        got, want,
        "fixture findings drifted — update fixtures or rules"
    );
}

#[test]
fn suppressed_and_cold_violations_stay_silent() {
    let fs = findings();
    // The justified unwrap in allows.rs (line 7) is suppressed…
    assert!(
        !fs.iter()
            .any(|f| f.file.ends_with("allows.rs") && f.line == 7),
        "allow on line 6 must suppress the line-7 unwrap"
    );
    // …and `cold_fn` (not in the hot set) never reports at all.
    assert!(
        !fs.iter().any(|f| f.file.ends_with("hot.rs") && f.line > 9),
        "cold_fn is outside the declared hot set"
    );
}

#[test]
fn inventory_write_would_fix_the_drift() {
    let root = fixture_root();
    let cfg = erpc_lint::load_config(&root).unwrap();
    let rows = erpc_lint::collect_unsafe_rows(&root, &cfg).unwrap();
    let table = erpc_lint::inventory::render(&rows);
    // The fixture's stale DESIGN.md drifts…
    let stale = std::fs::read_to_string(root.join("DESIGN.md")).unwrap();
    assert!(erpc_lint::inventory::check_drift(&stale, &table).is_some());
    // …and splicing the generated table in makes it clean (the fix the
    // CLI's `inventory --write` applies).
    let fixed = erpc_lint::inventory::splice(&stale, &table).unwrap();
    assert!(erpc_lint::inventory::check_drift(&fixed, &table).is_none());
    // The undocumented fixture sites surface as UNDOCUMENTED rows.
    assert!(table.contains("**UNDOCUMENTED**"));
    // The documented one carries its justification + coverage.
    assert!(table.contains("fixture — nothing to uphold"));
}
