// Fixture: R2 (hot-path purity). `hot_fn` is in the declared hot set;
// `cold_fn` is not, so its identical violation must NOT be reported.

pub fn hot_fn(x: Option<u8>) -> u8 {
    let _label = format!("pkt {}", 7); // line 5: hot-path-alloc
    let _t = std::time::Instant::now(); // line 6: hot-path-clock
    x.unwrap() // line 7: hot-path-panic
}

pub fn cold_fn(x: Option<u8>) -> u8 {
    let _label = format!("pkt {}", 7);
    x.unwrap()
}
