// Fixture: R3 (`no-print`). Library sources must not print; a string
// mentioning println!("x") must not count.

pub fn report(n: u64) {
    println!("rate {n}"); // line 5: no-print finding
    eprintln!("warn {n}"); // line 6: no-print finding
    let _doc = "calling println!(\"x\") is fine inside a string";
}
