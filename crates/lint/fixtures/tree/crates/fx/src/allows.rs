// Fixture: the `lint:allow` escape machinery. One justified violation
// (suppressed), an identical one right after it (an allow covers
// exactly one finding), an unused allow, and a malformed allow.

pub fn hot_fn(x: Option<u8>, y: Option<u8>) -> u8 {
    // lint:allow(hot-path-panic): fixture — justified unwrap.
    let a = x.unwrap(); // suppressed by the allow above
    let b = y.unwrap(); // line 8: hot-path-panic finding (allow spent)
    a + b
}

// lint:allow(hot-path-alloc): nothing below allocates.
pub fn nothing_to_allow() {} // line 12: unused-allow finding

pub fn malformed() {
    // lint:allow(bogus-rule): no such rule.
    let _ = 1; // line 16: malformed-allow finding
}
