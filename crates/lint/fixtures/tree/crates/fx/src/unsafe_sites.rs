// Fixture: R1 (`safety-comment`). One documented site of each flavor,
// then undocumented ones that must each produce a finding.

// SAFETY: fixture — nothing to uphold, the body is empty.
// COVERS: lint fixture tests
unsafe fn documented() {}

unsafe fn undocumented() {} // line 8: safety-comment finding

fn caller() {
    // SAFETY: fixture — `documented` has no requirements.
    unsafe { documented() };
    unsafe { undocumented() }; // line 13: safety-comment finding
}
