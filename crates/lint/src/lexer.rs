//! A comment/string/raw-string-aware Rust tokenizer.
//!
//! This is not a full Rust lexer — it is exactly the subset the rule
//! engine needs to be *sound against false positives*: an `unsafe` or
//! `unwrap` inside a string literal, a raw string, a (possibly nested)
//! block comment, or a doc example must never look like code, and a
//! lifetime `'a` must never swallow the rest of the line as an unclosed
//! char literal. Everything else (numbers, punctuation) is tokenized just
//! precisely enough to match call/path patterns like `.unwrap(`,
//! `Instant::now`, or `vec!`.
//!
//! Tokens carry their 1-based start line so findings are clickable.

/// Lexical class of a [`Token`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (incl. raw identifiers, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    CharLit,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `br"…"`).
    StrLit,
    /// Numeric literal (integer part only; `1.5` lexes as Num Punct Num).
    Num,
    /// Line or block comment, text preserved verbatim (incl. delimiters).
    Comment,
    /// Punctuation. Single char, except `::` which is fused.
    Punct,
}

/// One lexeme with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    /// The lexeme text. For comments: the full comment incl. `//` / `/*`.
    pub text: String,
    /// 1-based line where the token starts.
    pub line: u32,
}

impl Token {
    fn new(kind: TokKind, text: impl Into<String>, line: u32) -> Self {
        Self {
            kind,
            text: text.into(),
            line,
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unterminated literals are consumed to EOF
/// (the lint runs on code that already passed rustc, so this is defensive).
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // ── Comments ──────────────────────────────────────────────────
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let (start, l) = (i, line);
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            toks.push(Token::new(
                TokKind::Comment,
                chars[start..i].iter().collect::<String>(),
                l,
            ));
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let (start, l) = (i, line);
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1; // block comments nest in Rust
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            toks.push(Token::new(
                TokKind::Comment,
                chars[start..i].iter().collect::<String>(),
                l,
            ));
            continue;
        }

        // ── Raw strings / byte strings (before plain identifiers) ─────
        // r"…", r#"…"#, br"…", b"…", b'…'. `r#ident` is a raw identifier,
        // not a raw string — disambiguated by what follows the `#`s.
        if c == 'r' || c == 'b' {
            if let Some((end, newlines)) = try_str_prefix(&chars, i) {
                toks.push(Token::new(
                    TokKind::StrLit,
                    chars[i..end].iter().collect::<String>(),
                    line,
                ));
                line += newlines;
                i = end;
                continue;
            }
            if c == 'b' && i + 1 < n && chars[i + 1] == '\'' {
                let (end, _) = scan_char_literal(&chars, i + 1);
                toks.push(Token::new(
                    TokKind::CharLit,
                    chars[i..end].iter().collect::<String>(),
                    line,
                ));
                i = end;
                continue;
            }
        }

        // ── Identifiers (incl. raw identifiers) ───────────────────────
        if is_ident_start(c) {
            let start = i;
            i += 1;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Token::new(
                TokKind::Ident,
                chars[start..i].iter().collect::<String>(),
                line,
            ));
            continue;
        }
        if c == 'r' && i + 1 < n && chars[i + 1] == '#' && i + 2 < n && is_ident_start(chars[i + 2])
        {
            // Unreachable in practice (the ident arm above consumes `r`),
            // kept for clarity: raw identifiers are plain identifiers.
        }

        // ── Plain string literal ──────────────────────────────────────
        if c == '"' {
            let (start, l) = (i, line);
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Token::new(
                TokKind::StrLit,
                chars[start..i.min(n)].iter().collect::<String>(),
                l,
            ));
            continue;
        }

        // ── Char literal vs lifetime ──────────────────────────────────
        if c == '\'' {
            // `'\n'` / `'\''` — escaped char literal.
            if i + 1 < n && chars[i + 1] == '\\' {
                let (end, _) = scan_char_literal(&chars, i);
                toks.push(Token::new(
                    TokKind::CharLit,
                    chars[i..end].iter().collect::<String>(),
                    line,
                ));
                i = end;
                continue;
            }
            // `'x'` (any single char, incl. digits and punctuation).
            if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                toks.push(Token::new(
                    TokKind::CharLit,
                    chars[i..i + 3].iter().collect::<String>(),
                    line,
                ));
                i += 3;
                continue;
            }
            // `'a`, `'static` — lifetime: ident chars, no closing quote.
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                let start = i;
                i += 2;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                toks.push(Token::new(
                    TokKind::Lifetime,
                    chars[start..i].iter().collect::<String>(),
                    line,
                ));
                continue;
            }
            // Stray quote: emit as punctuation and move on.
            toks.push(Token::new(TokKind::Punct, "'", line));
            i += 1;
            continue;
        }

        // ── Numbers ───────────────────────────────────────────────────
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            // Covers 0xFF, 0b1010, 1_000, suffixes (1u64). `.` is left as
            // punctuation so `0..10` cannot confuse the scanner.
            while i < n && (is_ident_continue(chars[i])) {
                i += 1;
            }
            toks.push(Token::new(
                TokKind::Num,
                chars[start..i].iter().collect::<String>(),
                line,
            ));
            continue;
        }

        // ── Punctuation (`::` fused for path matching) ────────────────
        if c == ':' && i + 1 < n && chars[i + 1] == ':' {
            toks.push(Token::new(TokKind::Punct, "::", line));
            i += 2;
            continue;
        }
        toks.push(Token::new(TokKind::Punct, c.to_string(), line));
        i += 1;
    }
    toks
}

/// If position `i` starts a (raw/byte) string literal prefix — `r"`,
/// `r#"`, `br#"`, `b"` — return `(end_index, newline_count)`.
fn try_str_prefix(chars: &[char], i: usize) -> Option<(usize, u32)> {
    let n = chars.len();
    let mut j = i;
    let mut raw = false;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == 'r' {
            raw = true;
            j += 1;
        }
    } else if chars[j] == 'r' {
        raw = true;
        j += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || chars[j] != '"' {
            return None; // `r#ident` (raw identifier) or plain `r` / `b`
        }
        j += 1;
        let mut newlines = 0u32;
        // Scan for `"` followed by `hashes` × `#`.
        while j < n {
            if chars[j] == '\n' {
                newlines += 1;
                j += 1;
                continue;
            }
            if chars[j] == '"' {
                let mut k = 0usize;
                while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    return Some((j + 1 + hashes, newlines));
                }
            }
            j += 1;
        }
        return Some((n, newlines));
    }
    // Non-raw byte string: `b"…"` with escapes.
    if j < n && chars[j] == '"' {
        j += 1;
        let mut newlines = 0u32;
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '\n' => {
                    newlines += 1;
                    j += 1;
                }
                '"' => return Some((j + 1, newlines)),
                _ => j += 1,
            }
        }
        return Some((n, newlines));
    }
    None
}

/// Scan a (possibly escaped) char literal starting at the `'` at `i`.
fn scan_char_literal(chars: &[char], i: usize) -> (usize, u32) {
    let n = chars.len();
    let mut j = i + 1;
    let mut guard = 0;
    while j < n && guard < 12 {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return (j + 1, 0),
            _ => j += 1,
        }
        guard += 1;
    }
    (j.min(n), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn unsafe_inside_string_is_not_code() {
        let src = r#"let s = "unsafe { }"; let t = 1;"#;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn unsafe_inside_raw_string_is_not_code() {
        let src = "let s = r#\"unsafe fn unwrap()\"#; call();";
        assert_eq!(idents(src), vec!["let", "s", "call"]);
        // The raw string is one literal token.
        assert_eq!(
            lex(src)
                .iter()
                .filter(|t| t.kind == TokKind::StrLit)
                .count(),
            1
        );
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let src = r##"let s = r#"she said "unsafe""#; x"##;
        assert_eq!(idents(src), vec!["let", "s", "x"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = r#"let a = b"unsafe"; let c = b'u'; let r = br"unwrap()";"#;
        assert_eq!(idents(src), vec!["let", "a", "let", "c", "let", "r"]);
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::StrLit).count(), 2);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::CharLit).count(),
            1
        );
    }

    #[test]
    fn unsafe_inside_line_comment_is_comment() {
        let src = "// this mentions unsafe and unwrap()\nlet x = 1;";
        assert_eq!(idents(src), vec!["let", "x"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unsafe */ still comment */ fn f() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert!(toks[0].text.contains("inner unsafe"));
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        // `'a` must not swallow `>` as part of a char literal.
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; }";
        let toks = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["'a'", "'\\n'"]);
    }

    #[test]
    fn static_lifetime_and_quote_escape() {
        let src = "static S: &'static str = \"x\"; let q = '\\'';";
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::CharLit && t.text == "'\\''"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "fn a() {}\n/* two\nlines */\nlet s = \"multi\nline\";\nfn b() {}";
        let toks = lex(src);
        let b = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident && t.text == "b")
            .unwrap();
        // fn a @1, comment @2-3, let s @4 (string spans 4-5), fn b @6.
        assert_eq!(b.line, 6);
    }

    #[test]
    fn double_colon_is_fused() {
        let src = "Instant::now()";
        let k = kinds(src);
        assert_eq!(
            k,
            vec![
                (TokKind::Ident, "Instant".into()),
                (TokKind::Punct, "::".into()),
                (TokKind::Ident, "now".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let src = "let r#fn = 1; let x = r\"str\";";
        let toks = lex(src);
        // r#fn lexes as Ident(r) Punct(#) Ident(fn) — good enough, and
        // crucially the following tokens are not swallowed as a string.
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "x"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::StrLit).count(), 1);
    }

    #[test]
    fn ranges_do_not_confuse_numbers() {
        let src = "for i in 0..10 { a[i] }";
        let nums: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// calls unwrap() in the example\n//! unsafe in crate doc\nfn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn unterminated_string_consumes_to_eof_without_panic() {
        let src = "let s = \"never closed";
        let toks = lex(src);
        assert_eq!(toks.last().unwrap().kind, TokKind::StrLit);
    }
}
