//! In-repo static analysis for the eRPC reproduction.
//!
//! The paper's fast-path discipline (§5.2: no allocation, no branches to
//! panic machinery, no syscalls per packet) and the repo's unsafe-audit
//! policy are enforced here as build-time checks that clippy cannot
//! express. See DESIGN.md § "Static analysis & invariant enforcement".
//!
//! Rules:
//! - `safety-comment` (R1): every `unsafe` block/fn/impl/trait needs an
//!   adjacent `// SAFETY:` comment.
//! - `hot-path-alloc` / `hot-path-panic` / `hot-path-clock` (R2): the
//!   declared hot-module set (lint.toml `[[hot]]`) must not allocate,
//!   panic, or read the clock per packet.
//! - `no-print` (R3): no `println!`/`eprintln!` in library sources.
//! - `inventory-drift` (R4): the unsafe-audit table in DESIGN.md must
//!   match the tree.
//!
//! Escape hatch: a `// lint:allow(<rule>): <reason>` comment suppresses
//! exactly one finding on its own line, within its comment run, or on
//! the first line below it; unused or malformed allows are themselves
//! findings.

#![forbid(unsafe_code)]

pub mod config;
pub mod inventory;
pub mod lexer;
pub mod rules;
pub mod walk;

use config::Config;
use inventory::Row;
use rules::Finding;
use std::path::Path;

/// Load `lint.toml` from the repo root (required).
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Config::parse(&src)
}

/// Collect all unsafe sites in the tree, for the audit table.
pub fn collect_unsafe_rows(root: &Path, cfg: &Config) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    for (rel, abs) in walk::rust_files(root, cfg)? {
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        for site in rules::scan_unsafe(&lexer::lex(&src)) {
            rows.push(Row {
                file: rel.clone(),
                site,
            });
        }
    }
    Ok(rows)
}

/// Run every rule over the tree rooted at `root`. Returns all findings
/// (empty = clean).
pub fn run_check(root: &Path) -> Result<Vec<Finding>, String> {
    let cfg = load_config(root)?;
    let mut findings = Vec::new();

    for (rel, abs) in walk::rust_files(root, &cfg)? {
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let apply_print = walk::is_library_source(&rel) && !cfg.print_allowed(&rel);
        findings.extend(rules::check_file(&rel, &src, &cfg, apply_print));
    }

    // R4: the DESIGN.md audit table must match the tree.
    let rows = collect_unsafe_rows(root, &cfg)?;
    let table = inventory::render(&rows);
    let design_path = root.join("DESIGN.md");
    let design = std::fs::read_to_string(&design_path)
        .map_err(|e| format!("cannot read {}: {e}", design_path.display()))?;
    if let Some(f) = inventory::check_drift(&design, &table) {
        findings.push(f);
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}
