//! Hand-parsed configuration (`lint.toml`) — a deliberately tiny TOML
//! subset, honoring the repo's zero-new-deps shims discipline.
//!
//! Supported grammar:
//!
//! ```toml
//! # top-level string arrays
//! exclude = ["target", "crates/lint/fixtures"]
//! print_allow = ["crates/lint"]
//!
//! # one table per hot file
//! [[hot]]
//! file = "crates/core/src/rpc/rx.rs"          # whole file is hot …
//! fns = ["process_pkt", "rx_burst"]           # … or only these fns
//! skip_fns = ["new"]                          # … or all but these
//! ```
//!
//! Anything outside this subset (nested tables, inline tables, multi-line
//! arrays with comments between entries, non-string values) is a parse
//! error — better to fail loudly than to silently skip a hot module.

use std::path::Path;

/// Hot-module declaration: which file, and which functions inside it.
#[derive(Debug, Clone)]
pub struct HotSpec {
    /// Repo-relative path with forward slashes, e.g. `crates/core/src/rpc/rx.rs`.
    pub file: String,
    /// If non-empty, only these functions are hot.
    pub fns: Vec<String>,
    /// If non-empty, all functions except these are hot.
    pub skip_fns: Vec<String>,
}

impl HotSpec {
    /// Is function `name` in this file's hot set?
    pub fn fn_is_hot(&self, name: &str) -> bool {
        if !self.fns.is_empty() {
            return self.fns.iter().any(|f| f == name);
        }
        if !self.skip_fns.is_empty() {
            return !self.skip_fns.iter().any(|f| f == name);
        }
        true
    }
}

/// Parsed `lint.toml`.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Path prefixes (repo-relative) to skip entirely.
    pub exclude: Vec<String>,
    /// Path prefixes where `println!`/`eprintln!` are permitted (R3).
    pub print_allow: Vec<String>,
    /// Hot-module declarations (R2).
    pub hot: Vec<HotSpec>,
}

impl Config {
    pub fn parse(src: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        // None = top level; Some(idx) = inside cfg.hot[idx].
        let mut cur_hot: Option<usize> = None;

        for (lineno, raw) in src.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[hot]]" {
                cfg.hot.push(HotSpec {
                    file: String::new(),
                    fns: Vec::new(),
                    skip_fns: Vec::new(),
                });
                cur_hot = Some(cfg.hot.len() - 1);
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "lint.toml:{}: unsupported table `{line}` (only [[hot]] is known)",
                    lineno + 1
                ));
            }
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| format!("lint.toml:{}: expected `key = value`", lineno + 1))?;
            let (key, val) = (key.trim(), val.trim());
            match (cur_hot, key) {
                (None, "exclude") => cfg.exclude = parse_str_array(val, lineno)?,
                (None, "print_allow") => cfg.print_allow = parse_str_array(val, lineno)?,
                (Some(i), "file") => cfg.hot[i].file = parse_str(val, lineno)?,
                (Some(i), "fns") => cfg.hot[i].fns = parse_str_array(val, lineno)?,
                (Some(i), "skip_fns") => cfg.hot[i].skip_fns = parse_str_array(val, lineno)?,
                _ => {
                    return Err(format!(
                        "lint.toml:{}: unknown key `{key}` in this context",
                        lineno + 1
                    ))
                }
            }
        }
        for h in &cfg.hot {
            if h.file.is_empty() {
                return Err("lint.toml: [[hot]] entry missing `file`".into());
            }
            if !h.fns.is_empty() && !h.skip_fns.is_empty() {
                return Err(format!(
                    "lint.toml: hot entry `{}` sets both `fns` and `skip_fns`",
                    h.file
                ));
            }
        }
        Ok(cfg)
    }

    /// Is a repo-relative path excluded from all analysis?
    pub fn is_excluded(&self, rel: &str) -> bool {
        self.exclude.iter().any(|p| path_has_prefix(rel, p))
    }

    /// Is a repo-relative path allowed to print (R3)?
    pub fn print_allowed(&self, rel: &str) -> bool {
        self.print_allow.iter().any(|p| path_has_prefix(rel, p))
    }

    /// The hot spec for a repo-relative path, if any.
    pub fn hot_spec(&self, rel: &str) -> Option<&HotSpec> {
        self.hot.iter().find(|h| h.file == rel)
    }
}

/// Prefix match on `/`-separated path components (so `crates/lint` does
/// not match `crates/lint-extras`).
fn path_has_prefix(rel: &str, prefix: &str) -> bool {
    rel == prefix || rel.starts_with(&format!("{prefix}/"))
}

/// Normalize an OS path (relative to the repo root) to the `/`-separated
/// form used throughout the config.
pub fn rel_str(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn strip_comment(line: &str) -> &str {
    // Safe because the subset only has double-quoted strings with no
    // escapes, so `#` inside a value string must be honored.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_str(val: &str, lineno: usize) -> Result<String, String> {
    let v = val.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!(
            "lint.toml:{}: expected a double-quoted string, got `{v}`",
            lineno + 1
        ))
    }
}

fn parse_str_array(val: &str, lineno: usize) -> Result<Vec<String>, String> {
    let v = val.trim();
    if !(v.starts_with('[') && v.ends_with(']')) {
        return Err(format!(
            "lint.toml:{}: expected a single-line string array, got `{v}`",
            lineno + 1
        ));
    }
    let inner = v[1..v.len() - 1].trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| parse_str(s, lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let src = r#"
# comment
exclude = ["target", "crates/lint/fixtures"]
print_allow = ["crates/lint"]

[[hot]]
file = "crates/core/src/rpc/rx.rs"

[[hot]]
file = "crates/core/src/msgbuf.rs"
skip_fns = ["new"]

[[hot]]
file = "crates/transport/src/ring.rs"
fns = ["push", "try_claim"]
"#;
        let cfg = Config::parse(src).unwrap();
        assert_eq!(cfg.exclude.len(), 2);
        assert!(cfg.is_excluded("target/debug/foo.rs"));
        assert!(cfg.is_excluded("crates/lint/fixtures/bad.rs"));
        assert!(!cfg.is_excluded("crates/lint/src/lib.rs"));
        assert!(cfg.print_allowed("crates/lint/src/main.rs"));
        assert!(!cfg.print_allowed("crates/lint-extras/src/main.rs"));

        let rx = cfg.hot_spec("crates/core/src/rpc/rx.rs").unwrap();
        assert!(rx.fn_is_hot("anything"));
        let mb = cfg.hot_spec("crates/core/src/msgbuf.rs").unwrap();
        assert!(!mb.fn_is_hot("new"));
        assert!(mb.fn_is_hot("alloc"));
        let ring = cfg.hot_spec("crates/transport/src/ring.rs").unwrap();
        assert!(ring.fn_is_hot("push"));
        assert!(!ring.fn_is_hot("len_approx"));
    }

    #[test]
    fn rejects_missing_file() {
        assert!(Config::parse("[[hot]]\nfns = [\"f\"]").is_err());
    }

    #[test]
    fn rejects_fns_and_skip_fns_together() {
        let src = "[[hot]]\nfile = \"a.rs\"\nfns = [\"f\"]\nskip_fns = [\"g\"]";
        assert!(Config::parse(src).is_err());
    }

    #[test]
    fn rejects_unknown_keys_and_tables() {
        assert!(Config::parse("[general]").is_err());
        assert!(Config::parse("bogus = [\"x\"]").is_err());
        assert!(Config::parse("[[hot]]\nfile = \"a.rs\"\nexclude = [\"x\"]").is_err());
    }

    #[test]
    fn hash_inside_string_value_is_kept() {
        let cfg = Config::parse("exclude = [\"weird#dir\"] # trailing").unwrap();
        assert_eq!(cfg.exclude, vec!["weird#dir"]);
    }
}
