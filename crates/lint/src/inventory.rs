//! R4: the unsafe-audit inventory. Renders every `unsafe` site in the
//! tree as a markdown table and keeps the copy embedded in DESIGN.md
//! from drifting.
//!
//! The table lives between these markers in DESIGN.md:
//!
//! ```text
//! <!-- erpc-lint:unsafe-audit:begin -->
//! …generated table…
//! <!-- erpc-lint:unsafe-audit:end -->
//! ```
//!
//! Columns come from the `SAFETY:` comment adjacent to each site: the
//! justification is its first sentence; a `COVERS: <test / Miri run>`
//! line inside the same comment run fills the coverage column.

use crate::rules::{Finding, UnsafeSite, R_INVENTORY};

pub const BEGIN: &str = "<!-- erpc-lint:unsafe-audit:begin -->";
pub const END: &str = "<!-- erpc-lint:unsafe-audit:end -->";

/// One row of the audit table.
#[derive(Debug, Clone)]
pub struct Row {
    pub file: String,
    pub site: UnsafeSite,
}

/// Render the audit table (markers not included).
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("| Site | Kind | Justification | Coverage |\n");
    out.push_str("|------|------|---------------|----------|\n");
    for r in rows {
        let (just, covers) = split_safety(r.site.safety.as_deref());
        out.push_str(&format!(
            "| `{}:{}` | {} | {} | {} |\n",
            r.file,
            r.site.line,
            r.site.kind,
            escape_cell(&just),
            escape_cell(&covers),
        ));
    }
    out
}

/// Split a joined SAFETY comment run into (first sentence, coverage).
fn split_safety(safety: Option<&str>) -> (String, String) {
    let Some(text) = safety else {
        return ("**UNDOCUMENTED**".into(), "—".into());
    };
    let covers = text
        .split("COVERS:")
        .nth(1)
        .map(|s| s.trim().trim_end_matches('.').to_string())
        .unwrap_or_else(|| "—".into());
    let body = text
        .split("SAFETY:")
        .nth(1)
        .unwrap_or(text)
        .split("COVERS:")
        .next()
        .unwrap_or("")
        .trim();
    let sentence = match body.find(". ") {
        Some(i) => &body[..i + 1],
        None => body,
    };
    (sentence.trim().to_string(), covers)
}

fn escape_cell(s: &str) -> String {
    s.replace('|', "\\|")
}

/// Replace the region between the markers in `design` with `table`.
pub fn splice(design: &str, table: &str) -> Result<String, String> {
    let begin = design
        .find(BEGIN)
        .ok_or_else(|| format!("DESIGN.md: missing `{BEGIN}` marker"))?;
    let end = design
        .find(END)
        .ok_or_else(|| format!("DESIGN.md: missing `{END}` marker"))?;
    if end < begin {
        return Err("DESIGN.md: end marker precedes begin marker".into());
    }
    let mut out = String::with_capacity(design.len() + table.len());
    out.push_str(&design[..begin + BEGIN.len()]);
    out.push('\n');
    out.push_str(table);
    out.push_str(&design[end..]);
    Ok(out)
}

/// Compare the embedded table against the freshly rendered one.
pub fn check_drift(design: &str, table: &str) -> Option<Finding> {
    let embedded = match (design.find(BEGIN), design.find(END)) {
        (Some(b), Some(e)) if e >= b => design[b + BEGIN.len()..e].trim(),
        _ => {
            return Some(Finding {
                rule: R_INVENTORY,
                file: "DESIGN.md".into(),
                line: 1,
                msg: format!("missing `{BEGIN}` / `{END}` markers"),
            })
        }
    };
    if embedded == table.trim() {
        None
    } else {
        Some(Finding {
            rule: R_INVENTORY,
            file: "DESIGN.md".into(),
            line: 1,
            msg: "unsafe-audit table is stale — run `cargo run -p erpc-lint -- inventory --write`"
                .into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(file: &str, line: u32, kind: &'static str, safety: Option<&str>) -> Row {
        Row {
            file: file.into(),
            site: UnsafeSite {
                line,
                kind,
                safety: safety.map(String::from),
            },
        }
    }

    #[test]
    fn renders_first_sentence_and_covers() {
        let rows = vec![row(
            "a.rs",
            7,
            "impl",
            Some(
                "SAFETY: Slots are owned exclusively. More detail here. COVERS: ring_stress (Miri)",
            ),
        )];
        let t = render(&rows);
        assert!(
            t.contains("| `a.rs:7` | impl | Slots are owned exclusively. | ring_stress (Miri) |"),
            "{t}"
        );
    }

    #[test]
    fn undocumented_site_is_flagged_in_table() {
        let t = render(&[row("b.rs", 3, "block", None)]);
        assert!(t.contains("**UNDOCUMENTED**"));
    }

    #[test]
    fn splice_and_drift_roundtrip() {
        let design = format!("# Doc\n\n{BEGIN}\nold\n{END}\n\ntail\n");
        let table = render(&[row("a.rs", 1, "fn", Some("SAFETY: Fine."))]);
        let updated = splice(&design, &table).unwrap();
        assert!(check_drift(&updated, &table).is_none());
        assert!(check_drift(&design, &table).is_some());
        // Idempotent.
        assert_eq!(splice(&updated, &table).unwrap(), updated);
    }

    #[test]
    fn missing_markers_is_drift() {
        let f = check_drift("# Doc with no markers", "x").unwrap();
        assert_eq!(f.rule, R_INVENTORY);
    }
}
