//! `erpc-lint` — repo-specific static analysis driver.
//!
//! Usage:
//!   erpc-lint [--root <dir>] check              # all rules; exit 1 on findings
//!   erpc-lint [--root <dir>] inventory          # print the unsafe-audit table
//!   erpc-lint [--root <dir>] inventory --write  # regenerate the table in DESIGN.md

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = default_root();
    let mut cmd = String::from("check");
    let mut write = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("erpc-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--write" => write = true,
            "check" | "inventory" => cmd = a,
            other => {
                eprintln!("erpc-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let result = match cmd.as_str() {
        "check" => run_check(&root),
        "inventory" => run_inventory(&root, write),
        _ => unreachable!(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("erpc-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// The repo root: walk up from CWD until a `lint.toml` is found.
fn default_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("lint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn run_check(root: &Path) -> Result<ExitCode, String> {
    let findings = erpc_lint::run_check(root)?;
    if findings.is_empty() {
        println!("erpc-lint: clean");
        return Ok(ExitCode::SUCCESS);
    }
    for f in &findings {
        println!("{f}");
    }
    println!(
        "erpc-lint: {} finding{} — fix or justify with `// lint:allow(<rule>): <reason>`",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    Ok(ExitCode::FAILURE)
}

fn run_inventory(root: &Path, write: bool) -> Result<ExitCode, String> {
    let cfg = erpc_lint::load_config(root)?;
    let rows = erpc_lint::collect_unsafe_rows(root, &cfg)?;
    let table = erpc_lint::inventory::render(&rows);
    if write {
        let design_path = root.join("DESIGN.md");
        let design = std::fs::read_to_string(&design_path)
            .map_err(|e| format!("cannot read {}: {e}", design_path.display()))?;
        let updated = erpc_lint::inventory::splice(&design, &table)?;
        if updated != design {
            std::fs::write(&design_path, updated)
                .map_err(|e| format!("cannot write {}: {e}", design_path.display()))?;
            println!("erpc-lint: DESIGN.md unsafe-audit table updated");
        } else {
            println!("erpc-lint: DESIGN.md unsafe-audit table already current");
        }
    } else {
        print!("{table}");
    }
    Ok(ExitCode::SUCCESS)
}
