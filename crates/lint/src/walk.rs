//! Deterministic workspace walker: every `.rs` file under the repo
//! root, minus `.git`, `target`, and config excludes, sorted by path.

use crate::config::{rel_str, Config};
use std::path::{Path, PathBuf};

/// All Rust sources as (repo-relative `/`-path, absolute path), sorted.
pub fn rust_files(root: &Path, cfg: &Config) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walk {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == ".git" || name == "target" {
                    continue;
                }
                let rel = rel_str(path.strip_prefix(root).unwrap_or(&path));
                if cfg.is_excluded(&rel) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = rel_str(path.strip_prefix(root).unwrap_or(&path));
                if cfg.is_excluded(&rel) {
                    continue;
                }
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Does R3 (no-print) apply to this repo-relative path? Library sources
/// only: `crates/*/src/**` and the umbrella `suite.rs` — not tests/,
/// examples/, benches/, or fixtures.
pub fn is_library_source(rel: &str) -> bool {
    if rel == "suite.rs" {
        return true;
    }
    let mut parts = rel.split('/');
    matches!(
        (parts.next(), parts.next(), parts.next()),
        (Some("crates"), Some(_), Some("src"))
    ) || {
        // shims live one level deeper: crates/shims/<name>/src/…
        let p: Vec<&str> = rel.split('/').collect();
        p.len() >= 4 && p[0] == "crates" && p[1] == "shims" && p[3] == "src"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_source_classification() {
        assert!(is_library_source("crates/core/src/rpc/rx.rs"));
        assert!(is_library_source("crates/shims/rand/src/lib.rs"));
        assert!(is_library_source("suite.rs"));
        assert!(!is_library_source("crates/core/tests/integration.rs"));
        assert!(!is_library_source("tests/figure5.rs"));
        assert!(!is_library_source("examples/hello.rs"));
        assert!(!is_library_source("crates/bench/benches/fig4.rs"));
    }
}
