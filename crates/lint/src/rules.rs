//! The rule engine: R1 (SAFETY comments), R2 (hot-path purity),
//! R3 (print hygiene), plus the `lint:allow` escape machinery.
//!
//! All rules operate on the token stream from [`crate::lexer`], so code
//! inside strings and comments can never trip a rule, and comments are
//! first-class (SAFETY detection, allow parsing).

use crate::config::Config;
use crate::lexer::{lex, TokKind, Token};

/// Rule identifiers, used in findings and in `lint:allow(<rule>)`.
pub const R_SAFETY: &str = "safety-comment";
pub const R_HOT_ALLOC: &str = "hot-path-alloc";
pub const R_HOT_PANIC: &str = "hot-path-panic";
pub const R_HOT_CLOCK: &str = "hot-path-clock";
pub const R_PRINT: &str = "no-print";
pub const R_UNUSED_ALLOW: &str = "unused-allow";
pub const R_MALFORMED_ALLOW: &str = "malformed-allow";
pub const R_INVENTORY: &str = "inventory-drift";

/// Every rule an allow may name.
pub const ALL_RULES: &[&str] = &[
    R_SAFETY,
    R_HOT_ALLOC,
    R_HOT_PANIC,
    R_HOT_CLOCK,
    R_PRINT,
    R_UNUSED_ALLOW,
    R_MALFORMED_ALLOW,
    R_INVENTORY,
];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// An `unsafe` site found in a file — shared between R1 and the
/// inventory (R4).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub line: u32,
    /// `block` | `fn` | `impl` | `trait` | `extern`
    pub kind: &'static str,
    /// The adjacent comment run, joined, if it contains `SAFETY:`.
    pub safety: Option<String>,
}

/// A parsed `// lint:allow(rule): reason` escape.
struct Allow {
    rule: String,
    line: u32,
    /// Last line this allow can suppress a finding on: the end of its
    /// own contiguous comment run (the reason may wrap onto further
    /// `//` lines) plus one line of code below it.
    end_line: u32,
    used: bool,
}

/// Check one file. `apply_print_rule` is decided by the walker (library
/// sources only, minus `print_allow` paths).
pub fn check_file(rel: &str, src: &str, cfg: &Config, apply_print_rule: bool) -> Vec<Finding> {
    let toks = lex(src);
    let mut findings = Vec::new();
    let mut allows = collect_allows(rel, &toks, &mut findings);
    let masked = mask_test_regions(&toks);
    let fn_of = enclosing_fns(&toks);

    // ── R1: SAFETY comments on unsafe sites (applies everywhere) ──────
    for site in scan_unsafe(&toks) {
        if site.safety.is_none() {
            findings.push(Finding {
                rule: R_SAFETY,
                file: rel.to_string(),
                line: site.line,
                msg: format!(
                    "`unsafe` {} has no preceding `// SAFETY:` comment",
                    site.kind
                ),
            });
        }
    }

    // ── R2: hot-path purity ───────────────────────────────────────────
    if let Some(spec) = cfg.hot_spec(rel) {
        for i in 0..toks.len() {
            if masked[i] {
                continue;
            }
            let hot_here = match &fn_of[i] {
                Some(name) => spec.fn_is_hot(name),
                None => false,
            };
            if !hot_here {
                continue;
            }
            if let Some((rule, what)) = hot_violation(&toks, i) {
                let fname = fn_of[i].as_deref().unwrap_or("?");
                findings.push(Finding {
                    rule,
                    file: rel.to_string(),
                    line: toks[i].line,
                    msg: format!("hot fn `{fname}` uses `{what}`"),
                });
            }
        }
    }

    // ── R3: no println!/eprintln! in library code ─────────────────────
    if apply_print_rule {
        for i in 0..toks.len() {
            if masked[i] {
                continue;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
                && next_punct_is(&toks, i + 1, "!")
            {
                findings.push(Finding {
                    rule: R_PRINT,
                    file: rel.to_string(),
                    line: t.line,
                    msg: format!("`{}!` in library code (use stats/log hooks)", t.text),
                });
            }
        }
    }

    // ── Apply allows: each suppresses exactly one finding on its own
    //    line, within its comment run, or on the line below it ──────────
    findings.sort_by_key(|f| f.line);
    findings.retain(|f| {
        if f.rule == R_MALFORMED_ALLOW {
            return true; // never suppressible
        }
        for a in allows.iter_mut() {
            if !a.used && a.rule == f.rule && a.line <= f.line && f.line <= a.end_line {
                a.used = true;
                return false;
            }
        }
        true
    });
    for a in &allows {
        if !a.used {
            findings.push(Finding {
                rule: R_UNUSED_ALLOW,
                file: rel.to_string(),
                line: a.line,
                msg: format!(
                    "lint:allow({}) suppresses nothing — remove it or move it to the finding",
                    a.rule
                ),
            });
        }
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Scan all `unsafe` sites with their adjacent SAFETY comment, if any.
/// Public so the inventory (R4) shares the exact detection logic.
pub fn scan_unsafe(toks: &[Token]) -> Vec<UnsafeSite> {
    let first_tok_of_line = first_token_of_line(toks);
    let mut sites = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let kind = match next_code_token(toks, i + 1).map(|j| toks[j].text.as_str()) {
            Some("fn") => "fn",
            Some("impl") => "impl",
            Some("trait") => "trait",
            Some("extern") => "extern",
            _ => "block",
        };
        let safety = find_safety_comment(toks, i, &first_tok_of_line);
        sites.push(UnsafeSite {
            line: t.line,
            kind,
            safety,
        });
    }
    sites
}

/// Backward scan from the `unsafe` token at `i` for an adjacent comment
/// run containing `SAFETY:`. Skips the statement prefix on the same line
/// (`let x = unsafe {`), whole attribute lines (`#[allow(...)]`), and
/// statement-continuation tokens; stops (fails) at the end of a previous
/// statement (`;`, `{`, `}`) so each site needs its own comment.
fn find_safety_comment(
    toks: &[Token],
    i: usize,
    first_tok_of_line: &std::collections::HashMap<u32, usize>,
) -> Option<String> {
    let site_line = toks[i].line;
    let mut j = i;
    // Same-line prefix: a trailing comment from a previous line cannot be
    // here, but a same-line `/* SAFETY: … */ unsafe {` counts.
    while j > 0 && toks[j - 1].line == site_line {
        j -= 1;
        if toks[j].kind == TokKind::Comment && toks[j].text.contains("SAFETY:") {
            return Some(comment_run_text(toks, j));
        }
    }
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match t.kind {
            TokKind::Comment => {
                // Coalesce the adjacent run of comments and search it.
                let mut k = j;
                loop {
                    if toks[k].text.contains("SAFETY:") {
                        return Some(comment_run_text(toks, k));
                    }
                    if k > 0 && toks[k - 1].kind == TokKind::Comment {
                        k -= 1;
                    } else {
                        break;
                    }
                }
                return None;
            }
            TokKind::Punct if t.text == "#" => {
                continue; // attribute opener; keep walking up
            }
            TokKind::Punct if matches!(t.text.as_str(), ";" | "{" | "}") => {
                // Previous statement ended without a comment in between …
                // unless this token is part of an attribute line
                // (`#[cfg(feature = "x")]` has none of these, but be
                // permissive: if the line starts with `#`, skip the line).
                if line_starts_with_hash(toks, j, first_tok_of_line) {
                    j = first_tok_of_line[&toks[j].line];
                    continue;
                }
                return None;
            }
            _ => {
                if line_starts_with_hash(toks, j, first_tok_of_line) {
                    j = first_tok_of_line[&toks[j].line];
                    continue;
                }
                // Statement continuation (`let x =` on the previous
                // line, `pub` etc.) — keep walking up.
                continue;
            }
        }
    }
    None
}

fn line_starts_with_hash(
    toks: &[Token],
    j: usize,
    first_tok_of_line: &std::collections::HashMap<u32, usize>,
) -> bool {
    first_tok_of_line
        .get(&toks[j].line)
        .map(|&f| toks[f].kind == TokKind::Punct && toks[f].text == "#")
        .unwrap_or(false)
}

fn first_token_of_line(toks: &[Token]) -> std::collections::HashMap<u32, usize> {
    let mut m = std::collections::HashMap::new();
    for (i, t) in toks.iter().enumerate() {
        m.entry(t.line).or_insert(i);
    }
    m
}

/// Join an adjacent run of comment tokens (starting anywhere inside it)
/// into one string, markers stripped.
fn comment_run_text(toks: &[Token], mut k: usize) -> String {
    while k > 0 && toks[k - 1].kind == TokKind::Comment {
        k -= 1;
    }
    let mut out = String::new();
    while k < toks.len() && toks[k].kind == TokKind::Comment {
        let t = toks[k]
            .text
            .trim_start_matches("//")
            .trim_start_matches('/') // doc comments `///`
            .trim_start_matches('!')
            .trim_start_matches("/*")
            .trim_end_matches("*/")
            .trim();
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(t);
        k += 1;
    }
    out
}

/// Next non-comment token index at or after `i`.
fn next_code_token(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if toks[i].kind != TokKind::Comment {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn next_punct_is(toks: &[Token], i: usize, p: &str) -> bool {
    next_code_token(toks, i)
        .map(|j| toks[j].kind == TokKind::Punct && toks[j].text == p)
        .unwrap_or(false)
}

/// Does a hot-path violation start at token `i`? Returns (rule, display).
fn hot_violation(toks: &[Token], i: usize) -> Option<(&'static str, String)> {
    let t = &toks[i];
    // `.method(` patterns — `i` is the `.`.
    if t.kind == TokKind::Punct && t.text == "." {
        if let Some(m) = next_code_token(toks, i + 1) {
            let name = &toks[m];
            if name.kind == TokKind::Ident && next_punct_is(toks, m + 1, "(") {
                let rule = match name.text.as_str() {
                    "unwrap" | "expect" => R_HOT_PANIC,
                    "to_vec" | "to_string" | "to_owned" | "clone" | "collect" => R_HOT_ALLOC,
                    "elapsed" => R_HOT_CLOCK,
                    _ => return None,
                };
                return Some((rule, format!(".{}()", name.text)));
            }
        }
        return None;
    }
    if t.kind != TokKind::Ident {
        return None;
    }
    // `macro!` patterns — `i` is the macro name.
    if next_punct_is(toks, i + 1, "!") {
        let rule = match t.text.as_str() {
            "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
            | "assert_ne" => R_HOT_PANIC,
            "vec" | "format" => R_HOT_ALLOC,
            _ => return None,
        };
        return Some((rule, format!("{}!", t.text)));
    }
    // `Path::seg` patterns — `i` is the first path segment.
    if let Some(c) = next_code_token(toks, i + 1) {
        if toks[c].kind == TokKind::Punct && toks[c].text == "::" {
            if let Some(s) = next_code_token(toks, c + 1) {
                let seg = toks[s].text.as_str();
                let rule = match (t.text.as_str(), seg) {
                    ("Box", "new")
                    | ("Vec", "new")
                    | ("Vec", "with_capacity")
                    | ("String", "from")
                    | ("String", "new")
                    | ("String", "with_capacity") => R_HOT_ALLOC,
                    ("Instant", "now") | ("SystemTime", "now") => R_HOT_CLOCK,
                    _ => return None,
                };
                return Some((rule, format!("{}::{}", t.text, seg)));
            }
        }
    }
    None
}

/// Parse `lint:allow(rule): reason` escapes out of comment tokens.
/// An allow must be its own comment — the comment body must *start*
/// with `lint:allow`, so prose that merely mentions the syntax (like
/// this doc comment) is never parsed. Malformed ones (unknown rule,
/// missing reason) become findings.
fn collect_allows(rel: &str, toks: &[Token], findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        i += 1;
        if t.kind != TokKind::Comment {
            continue;
        }
        let Some(rest) = allow_body(&t.text) else {
            continue;
        };
        let parsed = (|| {
            let rest = rest.strip_prefix('(')?;
            let close = rest.find(')')?;
            let rule = rest[..close].trim().to_string();
            let after = rest[close + 1..].trim_start();
            let reason = after.strip_prefix(':')?.trim();
            Some((rule, reason.to_string()))
        })();
        match parsed {
            Some((rule, reason)) if ALL_RULES.contains(&rule.as_str()) && !reason.is_empty() => {
                // A wrapped reason continues onto following comment lines;
                // extend coverage through the contiguous run (stopping at
                // any comment that starts its own allow).
                let mut end = t.line + t.text.matches('\n').count() as u32;
                while i < toks.len()
                    && toks[i].kind == TokKind::Comment
                    && toks[i].line == end + 1
                    && allow_body(&toks[i].text).is_none()
                {
                    end = toks[i].line + toks[i].text.matches('\n').count() as u32;
                    i += 1;
                }
                allows.push(Allow {
                    rule,
                    line: t.line,
                    end_line: end + 1,
                    used: false,
                });
            }
            Some((rule, _)) if !ALL_RULES.contains(&rule.as_str()) => {
                findings.push(Finding {
                    rule: R_MALFORMED_ALLOW,
                    file: rel.to_string(),
                    line: t.line,
                    msg: format!("lint:allow names unknown rule `{rule}`"),
                });
            }
            _ => {
                findings.push(Finding {
                    rule: R_MALFORMED_ALLOW,
                    file: rel.to_string(),
                    line: t.line,
                    msg: "lint:allow must be `lint:allow(<rule>): <reason>` with a non-empty \
                          reason"
                        .to_string(),
                });
            }
        }
    }
    allows
}

/// If `text` is a comment whose body *starts* with `lint:allow`, return
/// what follows; prose that merely mentions the syntax returns `None`.
fn allow_body(text: &str) -> Option<&str> {
    let body = text
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim_start_matches('!')
        .trim_start();
    body.strip_prefix("lint:allow")
}

/// Mark tokens inside `#[test]` / `#[cfg(test)]`-gated items, so test
/// code is free to unwrap, print, and allocate.
fn mask_test_regions(toks: &[Token]) -> Vec<bool> {
    let mut masked = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && next_punct_is(toks, i + 1, "["))
        {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some((attr_end, is_test)) = parse_attr(toks, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes / comments, then mask to the end of
        // the item body (`{ … }`); a `;` first means no body.
        let mut j = attr_end + 1;
        loop {
            match next_code_token(toks, j) {
                Some(k) if toks[k].kind == TokKind::Punct && toks[k].text == "#" => {
                    match parse_attr(toks, k) {
                        Some((e, _)) => j = e + 1,
                        None => break,
                    }
                }
                Some(_) => break,
                None => break,
            }
        }
        let mut depth_paren = 0i32;
        let mut depth_brace = 0i32;
        let mut end = None;
        let mut k = j;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth_paren += 1,
                    ")" | "]" => depth_paren -= 1,
                    "{" => depth_brace += 1,
                    "}" => {
                        depth_brace -= 1;
                        if depth_brace == 0 {
                            end = Some(k);
                            break;
                        }
                    }
                    ";" if depth_paren == 0 && depth_brace == 0 => break, // no body
                    _ => {}
                }
            }
            k += 1;
        }
        if let Some(e) = end {
            for slot in masked.iter_mut().take(e + 1).skip(attr_start) {
                *slot = true;
            }
            i = e + 1;
        } else {
            i = attr_end + 1;
        }
    }
    masked
}

/// Parse the attribute starting at the `#` token `i` (next token must be
/// `[`). Returns (index of closing `]`, contains-test) where
/// contains-test means the ident `test` appears outside any `not(...)`.
fn parse_attr(toks: &[Token], i: usize) -> Option<(usize, bool)> {
    let open = next_code_token(toks, i + 1)?;
    if !(toks[open].kind == TokKind::Punct && toks[open].text == "[") {
        return None;
    }
    let mut depth_bracket = 1i32;
    let mut depth_paren = 0i32;
    let mut not_depths: Vec<i32> = Vec::new();
    let mut has_test = false;
    let mut k = open + 1;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "[" => depth_bracket += 1,
                "]" => {
                    depth_bracket -= 1;
                    if depth_bracket == 0 {
                        return Some((k, has_test));
                    }
                }
                "(" => depth_paren += 1,
                ")" => {
                    depth_paren -= 1;
                    while not_depths.last().is_some_and(|&d| d > depth_paren) {
                        not_depths.pop();
                    }
                }
                _ => {}
            },
            TokKind::Ident if t.text == "not" && next_punct_is(toks, k + 1, "(") => {
                not_depths.push(depth_paren + 1);
            }
            TokKind::Ident if t.text == "test" && not_depths.is_empty() => {
                has_test = true;
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// For every token, the name of the function whose body contains it
/// (None at module / impl level). Closures and nested blocks inherit;
/// nested `fn`s shadow.
fn enclosing_fns(toks: &[Token]) -> Vec<Option<String>> {
    let mut out = vec![None; toks.len()];
    let mut stack: Vec<Option<String>> = vec![None];
    let mut pending: Option<String> = None;
    let mut depth_paren = 0i32;
    for i in 0..toks.len() {
        let t = &toks[i];
        out[i] = stack.last().cloned().flatten();
        match t.kind {
            TokKind::Ident if t.text == "fn" => {
                if let Some(n) = next_code_token(toks, i + 1) {
                    if toks[n].kind == TokKind::Ident {
                        pending = Some(toks[n].text.clone());
                    }
                }
            }
            TokKind::Punct => match t.text.as_str() {
                "(" | "[" => depth_paren += 1,
                ")" | "]" => depth_paren -= 1,
                ";" if depth_paren == 0 => pending = None, // trait method decl
                "{" => {
                    let inherit = stack.last().cloned().flatten();
                    stack.push(pending.take().or(inherit));
                }
                "}" if stack.len() > 1 => {
                    stack.pop();
                }
                _ => {}
            },
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn cfg_hot(file: &str) -> Config {
        Config::parse(&format!("[[hot]]\nfile = \"{file}\"")).unwrap()
    }

    fn check(src: &str, cfg: &Config) -> Vec<Finding> {
        check_file("f.rs", src, cfg, true)
    }

    #[test]
    fn unsafe_block_without_safety_fires() {
        let f = check("fn f() { unsafe { g(); } }", &Config::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, R_SAFETY);
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let src = "fn f() {\n    // SAFETY: g is sound because reasons.\n    unsafe { g(); }\n}";
        assert!(check(src, &Config::default()).is_empty());
    }

    #[test]
    fn safety_through_attribute_line() {
        let src =
            "// SAFETY: sound because reasons.\n#[allow(clippy::x)]\nunsafe impl Send for T {}";
        assert!(check(src, &Config::default()).is_empty());
    }

    #[test]
    fn each_unsafe_site_needs_its_own_comment() {
        let src = "fn f() {\n// SAFETY: only covers the first.\nlet a = unsafe { g() };\nlet b = unsafe { h() };\n}";
        let f = check(src, &Config::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn statement_prefix_on_same_line_is_skipped() {
        let src = "fn f() {\n    // SAFETY: fine.\n    let x = unsafe { g() };\n}";
        assert!(check(src, &Config::default()).is_empty());
    }

    #[test]
    fn multiline_comment_run_counts() {
        let src = "fn f() {\n// Long explanation first.\n// SAFETY: the actual contract.\n// More detail after.\nunsafe { g(); }\n}";
        assert!(check(src, &Config::default()).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let src = "fn f() { let s = \"unsafe { }\"; /* unsafe impl */ }";
        assert!(check(src, &Config::default()).is_empty());
    }

    #[test]
    fn unsafe_fn_and_impl_kinds() {
        let sites = scan_unsafe(&lex("unsafe fn f() {} unsafe impl S for T {} unsafe { }"));
        let kinds: Vec<_> = sites.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec!["fn", "impl", "block"]);
    }

    #[test]
    fn hot_unwrap_fires_and_names_fn() {
        let cfg = cfg_hot("f.rs");
        let f = check("fn rx(x: Option<u8>) { x.unwrap(); }", &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, R_HOT_PANIC);
        assert!(f[0].msg.contains("rx"));
        assert!(f[0].msg.contains(".unwrap()"));
    }

    #[test]
    fn hot_rules_cover_alloc_panic_clock() {
        let cfg = cfg_hot("f.rs");
        let src = r#"fn rx() {
            let v = Vec::new();
            let b = Box::new(1);
            let s = format!("x");
            let t = Instant::now();
            let e = t.elapsed();
            let w = vec![0u8; 4];
            panic!("no");
            assert_eq!(1, 1);
        }"#;
        let f = check(src, &cfg);
        let rules: Vec<_> = f.iter().map(|x| x.rule).collect();
        assert_eq!(f.len(), 8, "{f:?}");
        assert_eq!(rules.iter().filter(|r| **r == R_HOT_ALLOC).count(), 4);
        assert_eq!(rules.iter().filter(|r| **r == R_HOT_PANIC).count(), 2);
        assert_eq!(rules.iter().filter(|r| **r == R_HOT_CLOCK).count(), 2);
    }

    #[test]
    fn debug_assert_is_allowed_in_hot_fns() {
        let cfg = cfg_hot("f.rs");
        let f = check(
            "fn rx() { debug_assert!(true); debug_assert_eq!(1, 1); }",
            &cfg,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cold_fn_in_hot_file_is_exempt_via_fns_list() {
        let cfg = Config::parse("[[hot]]\nfile = \"f.rs\"\nfns = [\"rx\"]").unwrap();
        let src = "fn rx() {} fn setup(x: Option<u8>) { x.unwrap(); }";
        assert!(check(src, &cfg).is_empty());
    }

    #[test]
    fn skip_fns_exempts_named_fn_only() {
        let cfg = Config::parse("[[hot]]\nfile = \"f.rs\"\nskip_fns = [\"new\"]").unwrap();
        let src = "fn new(x: Option<u8>) { x.unwrap(); } fn hot(y: Option<u8>) { y.unwrap(); }";
        let f = check(src, &cfg);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("hot"));
    }

    #[test]
    fn test_mod_in_hot_file_is_masked() {
        let cfg = cfg_hot("f.rs");
        let src = "fn rx() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); println!(\"x\"); }\n}";
        assert!(check(src, &cfg).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let cfg = cfg_hot("f.rs");
        let src = "#[cfg(not(test))]\nfn rx(x: Option<u8>) { x.unwrap(); }";
        let f = check(src, &cfg);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn nested_fn_names_resolve() {
        let cfg = Config::parse("[[hot]]\nfile = \"f.rs\"\nfns = [\"outer\"]").unwrap();
        // `inner` is not hot, `outer` code after `inner` still is.
        let src = "fn outer(a: Option<u8>) { fn inner(b: Option<u8>) { b.unwrap(); } a.unwrap(); }";
        let f = check(src, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("outer"));
    }

    #[test]
    fn closures_inherit_the_enclosing_fn() {
        let cfg = cfg_hot("f.rs");
        let src = "fn rx(v: Vec<Option<u8>>) { v.iter().for_each(|x| { x.unwrap(); }); }";
        let f = check(src, &cfg);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("rx"));
    }

    #[test]
    fn println_in_library_fires_and_test_code_is_exempt() {
        let src =
            "fn f() { println!(\"x\"); }\n#[cfg(test)]\nmod t { fn g() { println!(\"y\"); } }";
        let f = check(src, &Config::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, R_PRINT);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn allow_suppresses_exactly_one_finding() {
        let cfg = cfg_hot("f.rs");
        let src = "fn rx(a: Option<u8>, b: Option<u8>) {\n    // lint:allow(hot-path-panic): a is checked by caller.\n    a.unwrap();\n    b.unwrap();\n}";
        let f = check(src, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn trailing_same_line_allow_works() {
        let cfg = cfg_hot("f.rs");
        let src = "fn rx(a: Option<u8>) { a.unwrap(); // lint:allow(hot-path-panic): checked.\n}";
        assert!(check(src, &cfg).is_empty());
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let f = check(
            "// lint:allow(hot-path-panic): nothing here.\nfn f() {}",
            &Config::default(),
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, R_UNUSED_ALLOW);
    }

    #[test]
    fn malformed_allow_is_a_finding() {
        let f = check(
            "// lint:allow(hot-path-panic)\nfn f() {}",
            &Config::default(),
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, R_MALFORMED_ALLOW);

        let f = check(
            "// lint:allow(bogus-rule): why.\nfn f() {}",
            &Config::default(),
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, R_MALFORMED_ALLOW);
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let cfg = cfg_hot("f.rs");
        let src = "fn rx(a: Option<u8>) {\n    // lint:allow(hot-path-alloc): wrong rule.\n    a.unwrap();\n}";
        let f = check(src, &cfg);
        // The unwrap still fires AND the allow is unused.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == R_HOT_PANIC));
        assert!(f.iter().any(|x| x.rule == R_UNUSED_ALLOW));
    }

    #[test]
    fn instant_now_in_nonhot_fn_is_fine() {
        let cfg = Config::parse("[[hot]]\nfile = \"f.rs\"\nfns = [\"rx\"]").unwrap();
        let src = "fn rx() {} fn clock() -> Instant { Instant::now() }";
        assert!(check(src, &cfg).is_empty());
    }
}
