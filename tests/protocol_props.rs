//! Property-style tests (seeded-RNG case generation; the workspace
//! builds offline, so no proptest) of the end-to-end protocol and the
//! codec layers, spanning crates.
//!
//! The headline property, mirroring §5.3's at-most-once + go-back-N
//! claims: **for any message size, any loss probability up to 30 %, and
//! any RNG seed, every RPC completes exactly once with intact data, the
//! server runs each handler exactly once, and session credits are fully
//! restored.**

use std::cell::Cell;
use std::rc::Rc;

use erpc::pkthdr::{patch_ecn, patch_pkt_num, PktHdr, PktHdrView, PktType, ECN_MASK};
use erpc::{Rpc, RpcConfig};
use erpc_transport::codec::{ByteReader, ByteWriter};
use erpc_transport::{Addr, MemFabric, MemFabricConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ECHO: u8 = 1;

fn lossy_roundtrips(loss: f64, seed: u64, sizes: Vec<usize>) {
    let fabric = MemFabric::new(MemFabricConfig {
        loss_prob: loss,
        seed,
        ..Default::default()
    });
    let cfg = RpcConfig {
        rto_ns: 300_000, // quick wall-clock retransmits for the test
        timer_scan_interval_ns: 20_000,
        ping_interval_ns: 0,
        ..RpcConfig::default()
    };
    let mut server = Rpc::new(fabric.create_transport(Addr::new(0, 0)), cfg.clone());
    server.register_request_handler(
        ECHO,
        Box::new(|ctx, req| {
            let mut v = req.to_vec();
            v.reverse();
            ctx.respond(&v);
        }),
    );
    let mut client = Rpc::new(fabric.create_transport(Addr::new(1, 0)), cfg);
    let sess = client.create_session(Addr::new(0, 0)).unwrap();
    let start = std::time::Instant::now();
    while !client.is_connected(sess) {
        client.run_event_loop_once();
        server.run_event_loop_once();
        assert!(start.elapsed().as_secs() < 30, "connect stalled");
    }
    let credits_before = client.session_credits_available(sess).unwrap();

    let done = Rc::new(Cell::new(0usize));
    let payload_ok = Rc::new(Cell::new(true));
    let n = sizes.len();
    for &size in sizes.iter() {
        let mut req = client.alloc_msg_buffer(size);
        let payload: Vec<u8> = (0..size).map(|j| (j % 251) as u8).collect();
        req.fill(&payload);
        let resp = client.alloc_msg_buffer(size.max(1));
        let (d2, p2) = (done.clone(), payload_ok.clone());
        client
            .enqueue_request(sess, ECHO, req, resp, move |ctx, comp| {
                if comp.result.is_err() {
                    p2.set(false);
                } else {
                    let expect: Vec<u8> =
                        (0..comp.req.len()).map(|i| (i % 251) as u8).rev().collect();
                    if comp.resp.data() != &expect[..] {
                        p2.set(false);
                    }
                }
                ctx.free_msg_buffer(comp.req);
                ctx.free_msg_buffer(comp.resp);
                d2.set(d2.get() + 1);
            })
            .unwrap();
    }
    let start = std::time::Instant::now();
    while done.get() < n {
        client.run_event_loop_once();
        server.run_event_loop_once();
        assert!(
            start.elapsed().as_secs() < 60,
            "stalled: {}/{n}",
            done.get()
        );
    }
    // Exactly-once completion, at-most-once execution, intact payloads.
    assert!(payload_ok.get(), "payload corrupted");
    assert_eq!(done.get(), n);
    assert_eq!(server.stats().handlers_invoked as usize, n);
    // No credit leaks after everything quiesces.
    assert_eq!(
        client.session_credits_available(sess).unwrap(),
        credits_before
    );
}

#[test]
fn rpcs_complete_exactly_once_under_loss() {
    for case in 0u64..12 {
        let mut rng = SmallRng::seed_from_u64(0x10551 ^ case);
        let loss = rng.gen_range(0.0f64..0.3);
        let seed = rng.gen::<u64>();
        let n = rng.gen_range(1usize..8);
        let sizes: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..6000)).collect();
        lossy_roundtrips(loss, seed, sizes);
    }
}

#[test]
fn pkthdr_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x9EADE7);
    for _ in 0..2000 {
        let pkt_type = match rng.gen_range(0u8..10) {
            0 => PktType::Req,
            1 => PktType::Resp,
            2 => PktType::CreditReturn,
            3 => PktType::Rfr,
            4 => PktType::ConnectReq,
            5 => PktType::ConnectResp,
            6 => PktType::DisconnectReq,
            7 => PktType::DisconnectResp,
            8 => PktType::Ping,
            _ => PktType::Pong,
        };
        let hdr = PktHdr {
            pkt_type,
            ecn: rng.gen::<bool>(),
            req_type: rng.gen::<u8>(),
            dest_session: rng.gen::<u16>(),
            msg_size: rng.gen_range(0u32..=(8 << 20)),
            req_num: rng.gen_range(0u64..(1 << 48)),
            pkt_num: rng.gen::<u16>(),
        };
        assert_eq!(PktHdr::decode(&hdr.encode()).unwrap(), hdr);
    }
}

fn random_hdr(rng: &mut SmallRng) -> PktHdr {
    let pkt_type = match rng.gen_range(0u8..10) {
        0 => PktType::Req,
        1 => PktType::Resp,
        2 => PktType::CreditReturn,
        3 => PktType::Rfr,
        4 => PktType::ConnectReq,
        5 => PktType::ConnectResp,
        6 => PktType::DisconnectReq,
        7 => PktType::DisconnectResp,
        8 => PktType::Ping,
        _ => PktType::Pong,
    };
    PktHdr {
        pkt_type,
        ecn: rng.gen::<bool>(),
        req_type: rng.gen::<u8>(),
        dest_session: rng.gen::<u16>(),
        msg_size: rng.gen_range(0u32..=(8 << 20)),
        req_num: rng.gen_range(0u64..(1 << 48)),
        pkt_num: rng.gen::<u16>(),
    }
}

/// §5.2 header-template property: for any header and any sequence of
/// per-packet patches (pkt_num pokes, ECN pokes), the patched template
/// bytes are *identical* to a fresh full `encode` of the equivalently
/// mutated struct. This is what lets the TX path write headers once and
/// never re-encode.
#[test]
fn hdr_template_patch_equals_fresh_encode() {
    let mut rng = SmallRng::seed_from_u64(0x7E391A7E);
    for _ in 0..2000 {
        let mut hdr = random_hdr(&mut rng);
        let mut bytes = hdr.encode();
        for _ in 0..rng.gen_range(1usize..8) {
            if rng.gen::<bool>() {
                let p = rng.gen::<u16>();
                patch_pkt_num(&mut bytes, p);
                hdr.pkt_num = p;
            } else {
                let e = rng.gen::<bool>();
                patch_ecn(&mut bytes, e);
                hdr.ecn = e;
            }
            assert_eq!(bytes, hdr.encode(), "patched bytes diverged for {hdr:?}");
        }
    }
}

/// Whole-msgbuf variant: `write_hdr_template` across a multi-packet
/// message must byte-for-byte equal per-packet `write_hdr` encodes, and
/// per-packet ECN pokes must stay equivalent to re-encodes.
#[test]
fn msgbuf_template_equals_per_packet_encodes() {
    let mut rng = SmallRng::seed_from_u64(0x7E3B0F);
    for _ in 0..300 {
        let dpp = *[512usize, 1024, 4096]
            .get(rng.gen_range(0usize..3))
            .unwrap();
        let size = rng.gen_range(0usize..20_000);
        let mut pool = erpc::BufPool::new(dpp);
        let mut a = pool.alloc(size);
        let mut b = pool.alloc(size);
        let payload: Vec<u8> = (0..size).map(|i| (i % 253) as u8).collect();
        a.fill(&payload);
        b.fill(&payload);
        let mut hdr = random_hdr(&mut rng);
        hdr.msg_size = size as u32;
        a.write_hdr_template(&hdr);
        for i in 0..a.num_pkts() {
            hdr.pkt_num = i as u16;
            b.write_hdr(i, &hdr);
            assert_eq!(a.hdr_bytes(i), b.hdr_bytes(i), "pkt {i} of {size} B");
        }
        // Random ECN pokes stay equivalent.
        for _ in 0..4 {
            let i = rng.gen_range(0usize..a.num_pkts());
            let e = rng.gen::<bool>();
            a.patch_hdr_ecn(i, e);
            hdr.pkt_num = i as u16;
            hdr.ecn = e;
            b.write_hdr(i, &hdr);
            assert_eq!(a.hdr_bytes(i), b.hdr_bytes(i));
        }
        assert_eq!(a.data(), &payload[..], "templates must not touch data");
    }
}

/// Zero-decode RX view property: for any encoded header — including ones
/// whose ECN bit a switch flipped in flight — every lazy accessor agrees
/// with the eager `PktHdr::decode`, and the view's up-front validity
/// check accepts exactly what `decode` accepts.
#[test]
fn hdr_view_agrees_with_decode() {
    let mut rng = SmallRng::seed_from_u64(0x71E3D0DE);
    for _ in 0..2000 {
        let hdr = random_hdr(&mut rng);
        let mut bytes = hdr.encode();
        if rng.gen::<bool>() {
            bytes[0] |= ECN_MASK; // switch marks the packet in flight
        }
        let decoded = PktHdr::decode(&bytes).unwrap();
        let (v, ty) = PktHdrView::parse(&bytes).expect("valid header must parse");
        assert_eq!(ty, decoded.pkt_type);
        assert_eq!(v.pkt_type(), decoded.pkt_type);
        assert_eq!(v.ecn(), decoded.ecn);
        assert_eq!(v.req_type(), decoded.req_type);
        assert_eq!(v.dest_session(), decoded.dest_session);
        assert_eq!(v.msg_size(), decoded.msg_size);
        assert_eq!(v.req_num(), decoded.req_num);
        assert_eq!(v.pkt_num(), decoded.pkt_num);
        assert_eq!(v.to_hdr(), decoded);
    }
    // Garbage agreement: the view's single up-front check rejects exactly
    // the inputs the eager decode rejects (short, bad magic, bad type).
    for _ in 0..5000 {
        let len = rng.gen_range(0usize..64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        assert_eq!(
            PktHdrView::parse(&bytes).is_some(),
            PktHdr::decode(&bytes).is_ok(),
            "view/decode validity disagreement on {bytes:?}"
        );
    }
}

#[test]
fn pkthdr_never_panics_on_garbage() {
    let mut rng = SmallRng::seed_from_u64(0x6A7BA6E);
    for _ in 0..5000 {
        let len = rng.gen_range(0usize..64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let _ = PktHdr::decode(&bytes); // must not panic
    }
}

#[test]
fn codec_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xC0DEC);
    for _ in 0..1000 {
        let a = rng.gen::<u8>();
        let b = rng.gen::<u16>();
        let c = rng.gen::<u32>();
        let d = rng.gen::<u64>();
        let e = rng.gen::<i64>();
        let f = rng.gen::<bool>();
        let blob: Vec<u8> = (0..rng.gen_range(0usize..256))
            .map(|_| rng.gen::<u8>())
            .collect();
        let mut buf = Vec::new();
        ByteWriter::new(&mut buf)
            .u8(a)
            .u16(b)
            .u32(c)
            .u64(d)
            .i64(e)
            .bool(f)
            .bytes(&blob);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), a);
        assert_eq!(r.u16().unwrap(), b);
        assert_eq!(r.u32().unwrap(), c);
        assert_eq!(r.u64().unwrap(), d);
        assert_eq!(r.i64().unwrap(), e);
        assert_eq!(r.bool().unwrap(), f);
        assert_eq!(r.bytes().unwrap(), &blob[..]);
        assert_eq!(r.remaining(), 0);
    }
}

#[test]
fn msgbuf_layout_invariants() {
    let mut rng = SmallRng::seed_from_u64(0x35_6B0F);
    for _ in 0..300 {
        let size = rng.gen_range(0usize..20_000);
        let dpp = *[512usize, 1024, 4096]
            .get(rng.gen_range(0usize..3))
            .unwrap();
        let mut pool = erpc::BufPool::new(dpp);
        let mut m = pool.alloc(size);
        let payload: Vec<u8> = (0..size).map(|i| (i % 253) as u8).collect();
        m.fill(&payload);
        // Invariant 1: data region contiguous & intact.
        assert_eq!(m.data(), &payload[..]);
        // Invariant 2: per-packet views partition the data.
        let mut reassembled = Vec::new();
        for p in 0..m.num_pkts() {
            let (h, d) = m.tx_view(p);
            if p == 0 {
                assert!(d.is_empty(), "first packet is one contiguous DMA");
                reassembled.extend_from_slice(&h[erpc::PKT_HDR_SIZE..]);
            } else {
                assert_eq!(h.len(), erpc::PKT_HDR_SIZE);
                reassembled.extend_from_slice(d);
            }
        }
        assert_eq!(reassembled, payload);
    }
}

#[test]
fn timing_wheel_releases_everything_in_order() {
    let mut rng = SmallRng::seed_from_u64(0x77EE1);
    for _ in 0..60 {
        let n = rng.gen_range(1usize..200);
        let deadlines: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..100_000)).collect();
        let granularity = *[64u64, 100, 1000].get(rng.gen_range(0usize..3)).unwrap();
        let mut wheel = erpc_congestion::TimingWheel::new(256, granularity, 0);
        for (i, &d) in deadlines.iter().enumerate() {
            wheel.insert(d, (d, i));
        }
        let mut released = Vec::new();
        let mut now = 0;
        while !wheel.is_empty() {
            now += granularity;
            wheel.reap(now, |(d, i)| {
                // Never released before its deadline.
                assert!(d <= now, "released early: deadline {d} at {now}");
                released.push((d, i));
            });
            assert!(now < 10_000_000, "wheel failed to drain");
        }
        assert_eq!(released.len(), deadlines.len());
    }
}
