//! Loopback integration test for the socket transport backends (ISSUE 8,
//! satellite 1): the same symmetric fig4-style request/response body runs
//! over `UdpTransport` (both syscall-batching modes) and, where the runtime
//! probe succeeds, over `IoUringTransport` with and without SQPOLL.
//!
//! The io_uring rows are *skip-with-log*, never fail: on a kernel or
//! seccomp profile that can't grant rings, `run_udp_symmetric` prints the
//! typed `UringError::Unavailable` reason and returns `None`, and this
//! test records the skip instead of asserting.

use erpc_bench::udp_cluster::{run_udp_symmetric, UdpBackend, UdpSymmetricOpts};

/// One shared body per backend: short warmup + measure windows, then the
/// invariants every working backend must satisfy on loopback.
fn check_backend(backend: UdpBackend) -> bool {
    let opts = UdpSymmetricOpts {
        warmup_ms: 20,
        measure_ms: 80,
        ..Default::default()
    };
    let Some(r) = run_udp_symmetric(&opts, backend) else {
        println!(
            "[skip] {}: probe declined, backend unavailable here",
            backend.label()
        );
        return false;
    };
    assert!(
        r.total_completed > 0,
        "{}: no RPCs completed in the measure window",
        backend.label()
    );
    assert!(
        r.passes > 0,
        "{}: event loop recorded zero passes",
        backend.label()
    );
    assert!(
        r.latency.percentile(50.0) > 0,
        "{}: latency histogram is empty despite {} completions",
        backend.label(),
        r.total_completed
    );
    // Backend-specific syscall-shape invariants (the point of the ladder).
    match backend {
        UdpBackend::UdpLoop | UdpBackend::UdpMmsg => {
            assert_eq!(r.ring_enters, 0, "UDP backends must not touch io_uring");
            assert!(
                r.tx_syscalls > 0,
                "{}: UDP datapath reported zero send syscalls",
                backend.label()
            );
        }
        UdpBackend::Uring { sqpoll } => {
            assert_eq!(
                r.tx_syscalls + r.rx_syscalls,
                0,
                "{}: io_uring datapath must not fall back to send/recv syscalls",
                backend.label()
            );
            assert!(
                r.cqe_harvested > 0,
                "{}: completions arrived but no CQEs harvested",
                backend.label()
            );
            if !sqpoll {
                assert!(
                    r.enters_per_pass() <= 1.0 + 1e-9,
                    "{}: {:.3} enters/pass, want ≤ 1",
                    backend.label(),
                    r.enters_per_pass()
                );
            }
        }
    }
    println!(
        "[ok] {}: {} RPCs, {} passes, {:.3} syscalls/RPC",
        backend.label(),
        r.total_completed,
        r.passes,
        r.syscalls_per_rpc()
    );
    true
}

#[test]
fn udp_loop_backend_loopback() {
    assert!(
        check_backend(UdpBackend::UdpLoop),
        "plain UDP must always be available"
    );
}

#[test]
fn udp_mmsg_backend_loopback() {
    assert!(
        check_backend(UdpBackend::UdpMmsg),
        "sendmmsg/recvmmsg UDP must always be available"
    );
}

#[test]
fn uring_backend_loopback_or_skip() {
    // Same body as the UDP rows; skipping (false) is a pass — the probe
    // result was already logged with its typed reason.
    let _ran = check_backend(UdpBackend::Uring { sqpoll: false });
}

#[test]
fn uring_sqpoll_backend_loopback_or_skip() {
    let _ran = check_backend(UdpBackend::Uring { sqpoll: true });
}
