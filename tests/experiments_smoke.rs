//! Scaled-down smoke runs of every experiment harness: exercises the full
//! bench plumbing (sim clusters, wall-clock clusters, Raft-over-eRPC,
//! Masstree service) and asserts the headline *shapes* that must hold for
//! the reproduction to be meaningful.

use erpc_bench::experiments::fig6_large_rpc_bw::RX_COPY_NS_PER_BYTE;
use erpc_bench::experiments::*;
use erpc_sim::{Cluster, RdmaNicModel};

#[test]
fn fig1_shape_cache_cliff() {
    let m = RdmaNicModel::default();
    let small = m.read_rate_mops(100, 1);
    let large = m.read_rate_mops(5_000, 1);
    assert!(
        large < small * 0.6,
        "connection-cache cliff missing: {small} vs {large}"
    );
}

#[test]
fn tab2_latency_shapes() {
    for cluster in [Cluster::Cx3, Cluster::Cx4, Cluster::Cx5] {
        let (erpc_ns, _, _, _) = tab2_small_rpc_latency::erpc_median_latency_ns(cluster, 50);
        let rdma_ns = cluster.rdma_read_latency_ns();
        // Both µs-scale; eRPC within ~1 µs above RDMA (paper: ≤ 0.8 µs).
        assert!(
            (1_000..8_000).contains(&erpc_ns),
            "{cluster:?}: eRPC median {erpc_ns} ns out of range"
        );
        assert!(
            erpc_ns > rdma_ns,
            "{cluster:?}: eRPC must cost more than raw RDMA"
        );
        assert!(
            erpc_ns < rdma_ns + 1_500,
            "{cluster:?}: eRPC {erpc_ns} vs RDMA {rdma_ns}: gap too large"
        );
    }
}

#[test]
fn fig4_erpc_close_to_fasst() {
    use erpc_bench::thread_cluster::{run_symmetric, SymmetricOpts};
    let run = |cfg| {
        run_symmetric(SymmetricOpts {
            endpoints: 2,
            warmup_ms: 30,
            measure_ms: 120,
            rpc_cfg: cfg,
            ..Default::default()
        })
        .per_core_rate
    };
    // Best-of-2 to damp shared-host noise.
    let full = |cfg: &erpc::RpcConfig| (0..2).map(|_| run(cfg.clone())).fold(0.0, f64::max);
    let erpc_cfg = erpc::RpcConfig {
        ping_interval_ns: 0,
        cc: erpc::CcAlgorithm::Timely(erpc_congestion::TimelyConfig {
            t_low_ns: 5_000_000,
            ..erpc_congestion::TimelyConfig::for_link(25e9)
        }),
        ..erpc::RpcConfig::default()
    };
    let erpc_rate = full(&erpc_cfg);
    let fasst_rate = full(&erpc::RpcConfig::fasst_like());
    assert!(erpc_rate > 50_000.0, "rate collapsed: {erpc_rate}");
    // Paper: within 18 %. Allow extra noise headroom on shared hosts.
    assert!(
        erpc_rate > fasst_rate * 0.65,
        "cost of generality too high: eRPC {erpc_rate:.0} vs FaSST {fasst_rate:.0}"
    );
}

#[test]
fn fig6_shape_crossover_and_copy_bound() {
    let small = fig6_large_rpc_bw::sim_goodput_bps(4 << 10, 8, RX_COPY_NS_PER_BYTE, 0.0);
    let big = fig6_large_rpc_bw::sim_goodput_bps(2 << 20, 3, RX_COPY_NS_PER_BYTE, 0.0);
    let big_nocopy = fig6_large_rpc_bw::sim_goodput_bps(2 << 20, 3, 0.0, 0.0);
    assert!(
        big > small * 3.0,
        "large messages must amortize: {small:.2e} vs {big:.2e}"
    );
    assert!(big > 60e9, "plateau too low: {big:.2e}");
    assert!(big_nocopy > big, "removing the RX copy must raise goodput");
    let rdma = RdmaNicModel::default().write_goodput_gbps(2 << 20, 100e9) * 1e9;
    assert!(
        big > rdma * 0.7,
        "paper: ≥70 % of RDMA write for large sizes"
    );
}

#[test]
fn tab4_shape_loss_cliff() {
    let clean = fig6_large_rpc_bw::sim_goodput_bps(8 << 20, 4, RX_COPY_NS_PER_BYTE, 1e-7);
    let heavy = fig6_large_rpc_bw::sim_goodput_bps(8 << 20, 3, RX_COPY_NS_PER_BYTE, 1e-3);
    assert!(
        heavy < clean * 0.25,
        "1e-3 loss must collapse goodput: {clean:.2e} vs {heavy:.2e}"
    );
}

#[test]
fn fig5_scale_smoke() {
    let r = fig5_scalability::run_scale(10, 1, 1_500_000);
    assert!(r.per_node_rate > 1e6, "rate {:.2e}", r.per_node_rate);
    let p50 = r.latency.percentile(50.0);
    assert!((3_000..60_000).contains(&p50), "p50 {p50} ns");
}

#[test]
fn tab5_shape_cc_cuts_queueing() {
    let on = tab5_incast::run_incast(10, true, false, 6_000_000);
    let off = tab5_incast::run_incast(10, false, false, 6_000_000);
    // Without cc, RTT ≈ M × C × MTU / link; with cc, several times lower.
    assert!(
        on.rtt.percentile(50.0) * 2 < off.rtt.percentile(50.0),
        "cc must cut median queueing: {} vs {}",
        on.rtt.percentile(50.0),
        off.rtt.percentile(50.0)
    );
    // The headline claim: no switch drops either way (buffer ≫ BDP).
    assert_eq!(on.switch_drops, 0);
    assert_eq!(off.switch_drops, 0);
    // And the no-cc queue really is the credit-window arithmetic.
    let expected_ns = 10.0 * 32.0 * 1068.0 * 8.0 / 25.0; // M*C*wire_mtu/25Gbps
    let measured = off.rtt.percentile(50.0) as f64;
    assert!(
        (measured - expected_ns).abs() < expected_ns * 0.5,
        "no-cc RTT {measured} vs predicted {expected_ns}"
    );
}

#[test]
fn tab6_raft_latency_single_digit_us() {
    let r = tab6_raft_replication::run_raft_latency(100);
    let client_p50 = r.client.percentile(50.0);
    let leader_p50 = r.leader_commit.percentile(50.0);
    // Paper: 5.5 µs client / 3.1 µs leader; NetChain 9.7 µs.
    assert!(
        (2_000..9_700).contains(&client_p50),
        "client p50 {client_p50} ns must be single-digit µs (beat NetChain)"
    );
    assert!(
        leader_p50 < client_p50,
        "commit happens before the client reply"
    );
}

#[test]
fn sec72_masstree_smoke() {
    let r = sec72_masstree::run_masstree(2, true, 100, 1, 128);
    assert!(r.gets_per_sec > 10_000.0, "rate {:.0}", r.gets_per_sec);
    assert!(r.get_latency.count() > 0);
    let p50 = r.get_latency.percentile(50.0);
    assert!(p50 < 20_000_000, "p50 {p50} ns implausible");
}

#[test]
fn nic_footprint_constant() {
    let cfg = erpc_sim::NicFootprintConfig::default();
    assert_eq!(cfg.erpc_bytes(), cfg.erpc_bytes());
    assert!(cfg.rdma_bytes(20_000) > cfg.erpc_bytes() * 100);
}

#[test]
fn fig5_real_threads_scaling_shape() {
    let t1 = fig5_scalability::run_scale_threads(1, 120);
    let t4 = fig5_scalability::run_scale_threads(4, 120);
    // Structure: per-thread breakdown sums to the total, latency merged
    // cross-thread, RpcStats merged across endpoints.
    assert_eq!(t4.per_thread.len(), 4);
    assert_eq!(
        t4.per_thread.iter().map(|s| s.completed).sum::<u64>(),
        t4.total_completed
    );
    assert_eq!(t4.latency.count(), t4.total_completed);
    assert!(t4.stats.responses_completed >= t4.total_completed);
    assert!(t1.aggregate_rate > 0.0 && t4.aggregate_rate > 0.0);
    // Thread scaling needs cores to scale onto: with cores >= T, the
    // aggregate must grow (Figure 5's whole point). Hosts with fewer
    // cores time-share the T busy-polling threads, and oversubscription
    // can measure *below* the cache-hot T=1 loopback — not a regression.
    if erpc_bench::host_cores() >= 4 {
        assert!(
            t4.aggregate_rate > t1.aggregate_rate,
            "T=4 aggregate {:.0} rps must exceed T=1 {:.0} rps on a {}-core host",
            t4.aggregate_rate,
            t1.aggregate_rate,
            erpc_bench::host_cores(),
        );
    }
}
