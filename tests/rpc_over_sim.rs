//! Cross-crate integration: the full eRPC protocol running over the
//! discrete-event fabric, under clean and adverse (lossy / reordering /
//! corrupting) network conditions — all in deterministic virtual time.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use erpc::{Rpc, RpcConfig};
use erpc_sim::{driver, Cluster, FaultConfig, SimNet, SimTransport, Topology};
use erpc_transport::Addr;

const ECHO: u8 = 1;

struct Harness {
    net: erpc_sim::NetHandle,
    eps: Vec<Ep>,
}

struct Ep {
    rpc: Rpc<SimTransport>,
}

impl driver::PolledEndpoint for Ep {
    fn poll(&mut self, _now: u64) -> u64 {
        self.rpc.run_event_loop_once();
        let w = self.rpc.take_work();
        40 + (w.tx_pkts + w.rx_pkts) * 40 + w.callbacks * 20
    }
}

fn harness(faults: FaultConfig, rto_ns: u64) -> Harness {
    harness_cfg(faults, rto_ns, true)
}

fn harness_cfg(faults: FaultConfig, rto_ns: u64, hdr_template: bool) -> Harness {
    let mut cfg = Cluster::Cx4.config();
    cfg.topology = Topology::SingleSwitch { hosts: 2 };
    cfg.faults = faults;
    let net = SimNet::new(cfg).into_handle();
    let rpc_cfg = RpcConfig {
        ping_interval_ns: 0,
        rto_ns,
        opt_hdr_template: hdr_template,
        ..RpcConfig::default()
    };
    let mut server = Rpc::new(
        SimTransport::new(net.clone(), Addr::new(0, 0)),
        rpc_cfg.clone(),
    );
    server.register_request_handler(
        ECHO,
        Box::new(|ctx, req| {
            let mut v = req.to_vec();
            v.reverse();
            ctx.respond(&v);
        }),
    );
    let client = Rpc::new(SimTransport::new(net.clone(), Addr::new(1, 0)), rpc_cfg);
    Harness {
        net,
        eps: vec![Ep { rpc: server }, Ep { rpc: client }],
    }
}

/// Run `n` sequential echos of `size` bytes; panics on stall/corruption.
/// Returns total retransmissions.
fn run_echos(h: &mut Harness, n: u64, size: usize, budget_ns: u64) -> u64 {
    let sess = h.eps[1].rpc.create_session(Addr::new(0, 0)).unwrap();
    let done = Rc::new(Cell::new(0u64));
    let ok = Rc::new(Cell::new(true));
    // Connect.
    let mut t = 0u64;
    while !h.eps[1].rpc.is_connected(sess) {
        t += 100_000;
        driver::run(&h.net, &mut h.eps, t);
        assert!(t < budget_ns, "connect stalled");
    }
    for i in 0..n {
        let issued_at = done.get();
        {
            let rpc = &mut h.eps[1].rpc;
            let mut req = rpc.alloc_msg_buffer(size);
            let payload: Vec<u8> = (0..size).map(|j| (j % 251) as u8).collect();
            req.fill(&payload);
            let resp = rpc.alloc_msg_buffer(size.max(1));
            let (d2, o2) = (done.clone(), ok.clone());
            rpc.enqueue_request(sess, ECHO, req, resp, move |ctx, comp| {
                if comp.result.is_err() {
                    o2.set(false);
                } else {
                    let expect: Vec<u8> =
                        (0..comp.req.len()).map(|i| (i % 251) as u8).rev().collect();
                    if comp.resp.data() != &expect[..] {
                        o2.set(false);
                    }
                }
                ctx.free_msg_buffer(comp.req);
                ctx.free_msg_buffer(comp.resp);
                d2.set(d2.get() + 1);
            })
            .unwrap();
        }
        while done.get() == issued_at {
            t += 100_000;
            driver::run(&h.net, &mut h.eps, t);
            assert!(t < budget_ns, "rpc {i} stalled at vtime {t}");
        }
    }
    assert!(ok.get(), "payload corruption or failure");
    h.eps[1].rpc.stats().retransmissions
}

#[test]
fn clean_network_multi_packet() {
    let mut h = harness(FaultConfig::default(), 5_000_000);
    let retx = run_echos(&mut h, 5, 5000, 1_000_000_000);
    assert_eq!(retx, 0, "no loss ⇒ no retransmissions");
}

#[test]
fn lossy_network_recovers() {
    let faults = FaultConfig {
        drop_prob: 0.05,
        ..Default::default()
    };
    let mut h = harness(faults, 1_000_000);
    let retx = run_echos(&mut h, 10, 4000, 60_000_000_000);
    assert!(retx > 0, "5 % loss must trigger go-back-N");
    // At-most-once held (handler count == completions).
    assert_eq!(h.eps[0].rpc.stats().handlers_invoked, 10);
}

#[test]
fn reordering_treated_as_loss() {
    let faults = FaultConfig {
        reorder_prob: 0.05,
        reorder_delay_ns: 30_000,
        ..Default::default()
    };
    let mut h = harness(faults, 1_000_000);
    run_echos(&mut h, 10, 4000, 60_000_000_000);
    let stale = h.eps[0].rpc.stats().rx_dropped_stale + h.eps[1].rpc.stats().rx_dropped_stale;
    assert!(stale > 0, "reordered packets must be dropped (§5.3)");
    assert_eq!(h.eps[0].rpc.stats().handlers_invoked, 10);
}

/// Run the adverse-network suites (loss, reorder, heavy retransmit) with
/// `opt_hdr_template` on and off and compare: the fast/slow-path split
/// must be behaviorally invisible. In deterministic virtual time the two
/// runs must produce *identical* completions, handler invocations,
/// retransmissions, and stale-drop counts — the knob may only change CPU
/// cost, never a protocol decision.
fn equivalence_case(faults: FaultConfig, n: u64, size: usize, budget: u64) {
    let run = |tmpl: bool| {
        let mut h = harness_cfg(faults.clone(), 1_000_000, tmpl);
        let retx = run_echos(&mut h, n, size, budget);
        let srv = h.eps[0].rpc.stats();
        let cli = h.eps[1].rpc.stats();
        (
            retx,
            srv.handlers_invoked,
            cli.responses_completed,
            srv.rx_dropped_stale + cli.rx_dropped_stale,
            cli.fast_path_hits + srv.fast_path_hits,
        )
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(
        (on.0, on.1, on.2, on.3),
        (off.0, off.1, off.2, off.3),
        "fast path changed protocol behavior (retx, handlers, completions, stale drops)"
    );
    assert_eq!(off.4, 0, "knob off must never enter the fast path");
    if size <= 1024 {
        assert!(
            on.4 > 0,
            "small RPCs with the knob on must hit the fast path"
        );
    }
}

#[test]
fn fast_slow_equivalence_under_loss() {
    let faults = FaultConfig {
        drop_prob: 0.05,
        ..Default::default()
    };
    // Single-packet echoes (the fast path's case) and multi-packet ones.
    equivalence_case(faults.clone(), 12, 32, 60_000_000_000);
    equivalence_case(faults, 6, 4000, 60_000_000_000);
}

#[test]
fn fast_slow_equivalence_under_reordering() {
    let faults = FaultConfig {
        reorder_prob: 0.05,
        reorder_delay_ns: 30_000,
        ..Default::default()
    };
    equivalence_case(faults.clone(), 12, 32, 60_000_000_000);
    equivalence_case(faults, 6, 4000, 60_000_000_000);
}

#[test]
fn fast_slow_equivalence_under_heavy_retransmission() {
    let faults = FaultConfig {
        drop_prob: 0.25,
        ..Default::default()
    };
    equivalence_case(faults, 8, 2500, 120_000_000_000);
}

#[test]
fn corruption_dropped_by_fabric() {
    let faults = FaultConfig {
        corrupt_prob: 0.1,
        ..Default::default()
    };
    let mut h = harness(faults, 1_000_000);
    run_echos(&mut h, 8, 3000, 60_000_000_000);
    assert!(h.net.borrow().stats.drops_corrupt > 0);
    assert_eq!(h.eps[0].rpc.stats().handlers_invoked, 8);
}

#[test]
fn bdp_credits_sustain_line_rate_without_drops() {
    // One flow with BDP-sized credits on a clean CX4 link: the switch
    // must never drop (§2.1's claim) and goodput must approach line rate.
    let mut cfg = Cluster::Cx4.config();
    cfg.topology = Topology::SingleSwitch { hosts: 2 };
    let bdp = cfg.bdp_bytes();
    let net = SimNet::new(cfg).into_handle();
    let rpc_cfg = RpcConfig {
        ping_interval_ns: 0,
        link_bps: 25e9,
        ..RpcConfig::default()
    }
    .with_bdp_credits(bdp, 1024);
    let mut server = Rpc::new(
        SimTransport::new(net.clone(), Addr::new(0, 0)),
        rpc_cfg.clone(),
    );
    server.register_request_handler(ECHO, Box::new(|ctx, _| ctx.respond(&[0; 16])));
    let mut client = Rpc::new(SimTransport::new(net.clone(), Addr::new(1, 0)), rpc_cfg);
    let done = Rc::new(Cell::new(0u64));
    let bufs: Rc<RefCell<Vec<(erpc::MsgBuf, erpc::MsgBuf)>>> = Rc::new(RefCell::new(Vec::new()));
    let sess = client.create_session(Addr::new(0, 0)).unwrap();
    let mut eps = vec![Ep { rpc: server }, Ep { rpc: client }];
    let mut t = 0u64;
    while !eps[1].rpc.is_connected(sess) {
        t += 100_000;
        driver::run(&net, &mut eps, t);
        assert!(t < 1_000_000_000);
    }
    // Stream 512 kB messages, 2 outstanding, for 2 ms of virtual time.
    let done2 = done.clone();
    let issue = move |rpc: &mut Rpc<SimTransport>,
                      bufs: &Rc<RefCell<Vec<(erpc::MsgBuf, erpc::MsgBuf)>>>| {
        let (mut req, resp) = bufs
            .borrow_mut()
            .pop()
            .unwrap_or((rpc.alloc_msg_buffer(512 << 10), rpc.alloc_msg_buffer(64)));
        req.resize(512 << 10);
        let (d2, b2) = (done2.clone(), bufs.clone());
        rpc.enqueue_request(sess, ECHO, req, resp, move |_ctx, comp| {
            assert!(comp.result.is_ok());
            d2.set(d2.get() + 1);
            b2.borrow_mut().push((comp.req, comp.resp));
        })
        .unwrap();
    };
    issue(&mut eps[1].rpc, &bufs);
    issue(&mut eps[1].rpc, &bufs);
    let t0 = t;
    let mut issued = 2u64;
    while t - t0 < 2_000_000 {
        t += 50_000;
        driver::run(&net, &mut eps, t);
        while done.get() + 2 > issued {
            issue(&mut eps[1].rpc, &bufs);
            issued += 1;
        }
    }
    let delivered_bytes = done.get() * (512 << 10);
    let goodput = delivered_bytes as f64 * 8.0 / ((t - t0) as f64 / 1e9);
    assert!(
        goodput > 15e9,
        "goodput {:.1} Gbps should approach the 25 Gbps line",
        goodput / 1e9
    );
    assert_eq!(
        net.borrow().stats.drops_switch_buffer,
        0,
        "BDP flow control ⇒ no switch drops"
    );
    assert_eq!(eps[1].rpc.stats().retransmissions, 0);
}

#[test]
fn channel_call_roundtrip_over_sim_transport() {
    // The `Channel` facade over the discrete-event fabric: the sim driver
    // advances virtual time between polls, so the call is resolved with
    // `is_done`/`try_take` rather than a blocking wait.
    let mut h = harness(FaultConfig::default(), 5_000_000);
    let chan = erpc::Channel::connect(&mut h.eps[1].rpc, Addr::new(0, 0)).unwrap();
    let mut t = 0u64;
    while !chan.is_connected(&h.eps[1].rpc) {
        t += 100_000;
        driver::run(&h.net, &mut h.eps, t);
        assert!(t < 1_000_000_000, "connect stalled");
    }
    let call = chan.call(&mut h.eps[1].rpc, ECHO, b"simulated").unwrap();
    while !call.is_done() {
        t += 100_000;
        driver::run(&h.net, &mut h.eps, t);
        assert!(t < 10_000_000_000, "channel call stalled in sim");
    }
    assert_eq!(
        call.try_take_vec(&mut h.eps[1].rpc).unwrap().unwrap(),
        b"detalumis"
    );

    // A lossy fabric still resolves the call (go-back-N under the hood).
    let mut h = harness(
        FaultConfig {
            drop_prob: 0.05,
            ..Default::default()
        },
        1_000_000,
    );
    let chan = erpc::Channel::connect(&mut h.eps[1].rpc, Addr::new(0, 0)).unwrap();
    let mut t = 0u64;
    while !chan.is_connected(&h.eps[1].rpc) {
        t += 100_000;
        driver::run(&h.net, &mut h.eps, t);
        assert!(t < 10_000_000_000, "lossy connect stalled");
    }
    let payload: Vec<u8> = (0..4000).map(|i| (i % 251) as u8).collect();
    let call = chan.call(&mut h.eps[1].rpc, ECHO, &payload).unwrap();
    while !call.is_done() {
        t += 100_000;
        driver::run(&h.net, &mut h.eps, t);
        assert!(t < 60_000_000_000, "lossy channel call stalled");
    }
    let expect: Vec<u8> = payload.iter().rev().copied().collect();
    // Zero-copy take: borrow-decode from the pooled response msgbuf.
    let matched = call
        .try_take_with(&mut h.eps[1].rpc, |bytes| bytes == &expect[..])
        .unwrap()
        .unwrap();
    assert!(matched);
}
